"""Serving-tier bench: QPS and tail latency of the resident KB server.

Drives a :class:`~repro.serving.KBServer` (id-native partition workers
kept resident after a parallel bulk load) with the multi-client
closed-loop load generator at two concurrency levels, and writes the
``BENCH_serving.json`` snapshot CI archives (``BENCH_SERVING_JSON`` env
var, else the test tmpdir).  Gates:

* QPS > 0 and p50 <= p99 at every level;
* repeated queries hit the version-keyed result caches (hit rate > 0);
* a DRed write (:meth:`MaterializedKB.apply`) through the server
  invalidates those caches — the post-write answer reflects the delta.
"""

import os
from pathlib import Path

import pytest

from repro.datalog.ast import Atom
from repro.datasets.lubm import UB
from repro.datasets.lubm_queries import LUBM_QUERIES
from repro.owl.vocabulary import RDF
from repro.rdf import Triple, URI
from repro.rdf.terms import Variable
from repro.serving import KBServer, run_load, write_serving_bench


def _serving_results_path(tmp_path: Path) -> Path:
    override = os.environ.get("BENCH_SERVING_JSON")
    return Path(override) if override else tmp_path / "bench_serving.json"


@pytest.fixture(scope="module")
def server(lubm_tiny):
    with KBServer.load(lubm_tiny.ontology, lubm_tiny.data, k=2,
                       capacity=256) as srv:
        yield srv


def test_bench_serving_qps_p99(tmp_path, server, lubm_tiny):
    queries = [q.parse().bgp for q in LUBM_QUERIES]
    # One warm-up pass populates the per-worker pattern caches, so the
    # measured window reports the resident steady state.
    for q in queries:
        server.query(q)

    reports = []
    for concurrency in (1, 4):
        report = run_load(server, queries, concurrency=concurrency,
                          requests_per_client=64 // concurrency,
                          label=f"c{concurrency}")
        assert report.completed == report.requests
        assert report.qps > 0
        assert 0 < report.p50_ms <= report.p99_ms
        # the closed-loop mix repeats all 14 patterns: cache territory
        assert report.cache_hit_rate > 0, report
        reports.append(report)

    payload = write_serving_bench(
        _serving_results_path(tmp_path),
        reports,
        meta={
            "dataset": lubm_tiny.name,
            "closure_triples": len(server.kb),
            "k": 2,
            "backend": "bsp",
            "queries": len(queries),
        },
    )
    assert len(payload["levels"]) == 2
    assert payload["headline"]["qps"] > 0


def test_bench_serving_write_invalidation(server):
    """The write path invalidates the caches it must: a served answer
    changes after an apply through the server, and reverts after the
    retraction — no stale cache reads in between."""
    x = Variable("x")
    pattern = [Atom(x, RDF.type, UB.FullProfessor)]
    before = server.query(pattern)
    server.query(pattern)  # ensure the cached path is what we re-read
    newcomer = Triple(URI("ex:bench-prof"), RDF.type, UB.FullProfessor)
    server.apply(adds=[newcomer])
    assert len(server.query(pattern)) == len(before) + 1
    server.apply(removes=[newcomer])
    assert len(server.query(pattern)) == len(before)
