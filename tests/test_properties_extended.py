"""Second property-test battery: BGP queries vs a brute-force oracle,
streaming-vs-in-memory placement agreement, and serializer round-trips."""

from __future__ import annotations

import itertools
import string

from hypothesis import given, settings, strategies as st

from repro.datalog.ast import Atom, Rule
from repro.datalog.parser import parse_rules
from repro.datalog.serializer import rules_to_document
from repro.partitioning import HashPartitioningPolicy, partition_data
from repro.partitioning.streaming import stream_partition
from repro.rdf import BGPQuery, Graph, Triple, URI, serialize_ntriples
from repro.rdf.terms import Term, Variable

_small_nodes = st.builds(lambda i: URI(f"n:{i}"), st.integers(0, 8))
_predicates = st.builds(lambda s: URI("p:" + s), st.sampled_from(["p", "q"]))
small_triples = st.builds(Triple, _small_nodes, _predicates, _small_nodes)
small_graphs = st.builds(Graph, st.lists(small_triples, max_size=25))

_vars = st.builds(Variable, st.sampled_from(["x", "y", "z"]))
_pattern_term = _vars | _small_nodes
_patterns = st.builds(
    Atom,
    _pattern_term,
    _vars | _predicates,
    _pattern_term,
)


def brute_force_bgp(graph: Graph, patterns: list[Atom]) -> set[tuple]:
    """Oracle: enumerate every combination of triples, keep consistent
    bindings.  Exponential, fine at test sizes."""
    variables = sorted(
        {v for p in patterns for v in p.variables()}, key=lambda v: v.name
    )
    solutions: set[tuple] = set()
    for combo in itertools.product(list(graph), repeat=len(patterns)):
        bindings: dict = {}
        ok = True
        for pattern, triple in zip(patterns, combo):
            extended = pattern.match_triple(triple, bindings)
            if extended is None:
                ok = False
                break
            bindings = extended
        if ok:
            solutions.add(tuple(bindings[v] for v in variables))
    return solutions


@given(small_graphs, st.lists(_patterns, min_size=1, max_size=2))
@settings(max_examples=40, deadline=None)
def test_bgp_matches_brute_force(graph, patterns):
    variables = sorted(
        {v for p in patterns for v in p.variables()}, key=lambda v: v.name
    )
    query = BGPQuery(patterns)
    got = {
        tuple(b[v] for v in variables) for b in query.execute(graph)
    }
    assert got == brute_force_bgp(graph, patterns)


@given(small_graphs, st.integers(2, 4))
@settings(max_examples=25, deadline=None)
def test_streaming_agrees_with_in_memory_hash(graph, k):
    # hypothesis can't use pytest fixtures inside @given examples; build
    # paths under a per-example temp dir instead of tmp_path.
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        src = tmp_path / "g.nt"
        src.write_text(serialize_ntriples(graph), encoding="utf-8")
        report = stream_partition(src, tmp_path / "out", k=k)
        in_memory = partition_data(graph, HashPartitioningPolicy(), k)
        # Identical per-partition triple sets (modulo the streaming
        # vocabulary approximation: no rdf:type triples in this strategy's
        # vocabulary because the generator never emits them here).
        from repro.rdf import parse_ntriples

        for i in range(k):
            streamed = Graph(
                parse_ntriples(
                    report.partition_files[i].read_text(encoding="utf-8")
                )
            )
            assert streamed == in_memory.partitions[i], f"partition {i}"


_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=5)


@st.composite
def random_rules(draw):
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    p1 = draw(_predicates)
    p2 = draw(_predicates)
    name = draw(_names)
    body = [Atom(x, p1, y), Atom(y, p2, z)]
    return Rule(name, body, Atom(x, draw(_predicates), z))


@given(st.lists(random_rules(), min_size=1, max_size=5))
@settings(max_examples=40, deadline=None)
def test_serializer_round_trip_property(rules):
    # Unique-ify names (the parser document allows duplicates, but
    # equality comparison is simpler with unique names).
    rules = [
        Rule(f"{r.name}{i}", r.body, r.head) for i, r in enumerate(rules)
    ]
    doc = rules_to_document(rules, {"p": "p:", "n": "n:"})
    reparsed = parse_rules(doc)
    assert [(r.name, r.body, r.head) for r in reparsed] == [
        (r.name, r.body, r.head) for r in rules
    ]
