"""Unit tests for rule analysis: join classes, the partitionability gate,
and the rule dependency graph."""

import pytest

from repro.datalog import (
    JoinClass,
    classify_rule,
    is_single_join,
    parse_rules,
    predicate_counts,
    rule_dependency_graph,
)
from repro.datalog.analysis import (
    check_data_partitionable,
    join_variables,
    self_recursive,
)
from repro.rdf import Graph, URI

PREFIX = "@prefix ex: <ex:>\n"


def rule(text):
    return parse_rules(PREFIX + text)[0]


class TestClassification:
    def test_zero_join(self):
        r = rule("[r: (?a ex:p ?b) -> (?b ex:p ?a)]")
        assert classify_rule(r) is JoinClass.ZERO_JOIN

    def test_single_join(self):
        r = rule("[r: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]")
        assert classify_rule(r) is JoinClass.SINGLE_JOIN
        assert is_single_join(r)

    def test_cartesian(self):
        r = rule("[r: (?a ex:p ?b) (?c ex:q ?d) -> (?a ex:r ?c)]")
        assert classify_rule(r) is JoinClass.CARTESIAN

    def test_multi_join(self):
        r = rule(
            "[r: (?a ex:p ?b) (?b ex:p ?c) (?c ex:p ?d) -> (?a ex:p ?d)]"
        )
        assert classify_rule(r) is JoinClass.MULTI_JOIN

    def test_join_variables(self):
        r = rule("[r: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]")
        assert {v.name for v in join_variables(r)} == {"b"}

    def test_join_variables_rejects_non_single_join(self):
        r = rule("[r: (?a ex:p ?b) -> (?b ex:p ?a)]")
        with pytest.raises(ValueError):
            join_variables(r)

    def test_self_recursive(self):
        trans = rule("[r: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]")
        assert self_recursive(trans)
        nonrec = rule("[r: (?a ex:p ?b) -> (?a ex:q ?b)]")
        assert not self_recursive(nonrec)


class TestPartitionabilityGate:
    def test_single_join_set_passes(self):
        rules = parse_rules(
            PREFIX
            + "[a: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]"
            + "[b: (?a ex:p ?b) -> (?b ex:q ?a)]"
        )
        check_data_partitionable(rules)  # no raise

    def test_multi_join_rejected(self):
        rules = parse_rules(
            PREFIX + "[m: (?a ex:p ?b) (?b ex:p ?c) (?c ex:p ?d) -> (?a ex:p ?d)]"
        )
        with pytest.raises(ValueError, match="multi-join"):
            check_data_partitionable(rules)

    def test_cartesian_rejected(self):
        rules = parse_rules(
            PREFIX + "[c: (?a ex:p ?b) (?c ex:q ?d) -> (?a ex:r ?c)]"
        )
        with pytest.raises(ValueError, match="cartesian"):
            check_data_partitionable(rules)

    def test_predicate_position_join_rejected(self):
        rules = parse_rules(
            PREFIX + "[p: (?a ?j ?b) (?j ex:q ?c) -> (?a ex:r ?c)]"
        )
        with pytest.raises(ValueError, match="predicate position"):
            check_data_partitionable(rules)


class TestDependencyGraph:
    def test_feeding_edge_exists(self):
        rules = parse_rules(
            PREFIX
            + "[prod: (?a ex:p ?b) -> (?a ex:q ?b)]"
            + "[cons: (?a ex:q ?b) -> (?a ex:r ?b)]"
        )
        _, edges = rule_dependency_graph(rules)
        assert (0, 1) in edges

    def test_unrelated_rules_no_edge(self):
        rules = parse_rules(
            PREFIX
            + "[a: (?a ex:p ?b) -> (?a ex:q ?b)]"
            + "[b: (?a ex:x ?b) -> (?a ex:y ?b)]"
        )
        _, edges = rule_dependency_graph(rules)
        assert edges == {}

    def test_weighting_by_predicate_counts(self):
        rules = parse_rules(
            PREFIX
            + "[big: (?a ex:p ?b) -> (?a ex:q ?b)]"
            + "[consumer: (?a ex:q ?b) -> (?a ex:r ?b)]"
            + "[small: (?a ex:x ?b) -> (?a ex:r ?b)]"
            + "[consumer2: (?a ex:r ?b) -> (?a ex:s ?b)]"
        )
        stats = {URI("ex:q"): 100, URI("ex:r"): 1}
        _, edges = rule_dependency_graph(rules, predicate_stats=stats)
        assert edges[(0, 1)] == 100  # big -> consumer, weighted by q count
        # small/consumer2 edge weighted by r count (>=1 floor).
        assert edges[(2, 3)] == 1

    def test_predicate_counts_helper(self):
        g = Graph()
        g.add_spo(URI("ex:a"), URI("ex:p"), URI("ex:b"))
        g.add_spo(URI("ex:c"), URI("ex:p"), URI("ex:d"))
        g.add_spo(URI("ex:a"), URI("ex:q"), URI("ex:b"))
        counts = predicate_counts(g)
        assert counts[URI("ex:p")] == 2
        assert counts[URI("ex:q")] == 1
