"""Unit tests for the Triple value type."""

import pickle

import pytest

from repro.rdf import BNode, Literal, Triple, URI
from repro.rdf.terms import Variable


def t(s="ex:s", p="ex:p", o="ex:o"):
    return Triple(URI(s), URI(p), URI(o))


class TestConstruction:
    def test_basic(self):
        triple = t()
        assert triple.s == URI("ex:s")
        assert triple.p == URI("ex:p")
        assert triple.o == URI("ex:o")

    def test_bnode_subject_allowed(self):
        Triple(BNode("b"), URI("ex:p"), URI("ex:o"))

    def test_literal_subject_rejected(self):
        with pytest.raises(TypeError):
            Triple(Literal("x"), URI("ex:p"), URI("ex:o"))

    def test_literal_predicate_rejected(self):
        with pytest.raises(TypeError):
            Triple(URI("ex:s"), Literal("p"), URI("ex:o"))

    def test_bnode_predicate_rejected(self):
        with pytest.raises(TypeError):
            Triple(URI("ex:s"), BNode("p"), URI("ex:o"))

    def test_literal_object_allowed(self):
        Triple(URI("ex:s"), URI("ex:p"), Literal("42"))

    def test_variable_anywhere_rejected(self):
        with pytest.raises(TypeError):
            Triple(URI("ex:s"), URI("ex:p"), Variable("x"))

    def test_immutable(self):
        triple = t()
        with pytest.raises(AttributeError):
            triple.s = URI("ex:other")


class TestValueSemantics:
    def test_equality(self):
        assert t() == t()

    def test_hash_consistency(self):
        assert hash(t()) == hash(t())
        assert len({t(), t()}) == 1

    def test_inequality(self):
        assert t() != t(o="ex:other")

    def test_ordering(self):
        assert t(s="ex:a") < t(s="ex:b")

    def test_iteration_and_indexing(self):
        triple = t()
        assert list(triple) == [triple[0], triple[1], triple[2]]

    def test_str_is_ntriples(self):
        assert str(t()) == "<ex:s> <ex:p> <ex:o> ."

    def test_replace(self):
        assert t().replace(o=URI("ex:new")).o == URI("ex:new")
        assert t().replace().s == URI("ex:s")

    def test_pickle_round_trip(self):
        triple = t()
        assert pickle.loads(pickle.dumps(triple)) == triple
