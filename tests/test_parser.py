"""Unit tests for the rule-text parser."""

import pytest

from repro.datalog import RuleParseError, parse_rule, parse_rules
from repro.rdf import Literal, URI
from repro.rdf.terms import BNode, Variable

PREFIX = "@prefix ex: <http://x.org/>\n"


class TestBasics:
    def test_single_rule(self):
        r = parse_rule(PREFIX + "[t: (?a ex:p ?b) -> (?b ex:p ?a)]")
        assert r.name == "t"
        assert r.arity == 1
        assert r.body[0].p == URI("http://x.org/p")

    def test_two_body_atoms(self):
        r = parse_rule(
            PREFIX + "[t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]"
        )
        assert r.arity == 2

    def test_multiple_rules(self):
        rules = parse_rules(
            PREFIX + "[r1: (?a ex:p ?b) -> (?b ex:p ?a)]"
            "[r2: (?a ex:q ?b) -> (?b ex:q ?a)]"
        )
        assert [r.name for r in rules] == ["r1", "r2"]

    def test_multi_head_expansion(self):
        rules = parse_rules(
            PREFIX + "[r: (?a ex:p ?b) -> (?b ex:p ?a) (?a ex:q ?b)]"
        )
        assert [r.name for r in rules] == ["r", "r.2"]
        assert all(r.body == rules[0].body for r in rules)

    def test_comments_ignored(self):
        rules = parse_rules(
            PREFIX + "# header\n[t: (?a ex:p ?b) -> (?b ex:p ?a)] # trailing"
        )
        assert len(rules) == 1

    def test_empty_document(self):
        assert parse_rules("") == []


class TestTermForms:
    def test_absolute_iri(self):
        r = parse_rule("[t: (?a <http://y.org/p> ?b) -> (?b <http://y.org/p> ?a)]")
        assert r.body[0].p == URI("http://y.org/p")

    def test_plain_literal(self):
        r = parse_rule(PREFIX + '[t: (?a ex:p "on") -> (?a ex:q "on")]')
        assert r.body[0].o == Literal("on")

    def test_literal_with_escapes(self):
        r = parse_rule(PREFIX + r'[t: (?a ex:p "a\"b\nc") -> (?a ex:q ?a)]')
        assert r.body[0].o == Literal('a"b\nc')

    def test_datatyped_literal(self):
        r = parse_rule(
            PREFIX + '[t: (?a ex:p "1"^^<http://x.org/int>) -> (?a ex:q ?a)]'
        )
        assert r.body[0].o == Literal("1", datatype=URI("http://x.org/int"))

    def test_language_literal(self):
        r = parse_rule(PREFIX + '[t: (?a ex:p "hi"@en) -> (?a ex:q ?a)]')
        assert r.body[0].o == Literal("hi", language="en")

    def test_bnode(self):
        r = parse_rule(PREFIX + "[t: (_:n1 ex:p ?b) -> (?b ex:q ?b)]")
        assert r.body[0].s == BNode("n1")

    def test_variable(self):
        r = parse_rule(PREFIX + "[t: (?subject ex:p ?b) -> (?b ex:q ?b)]")
        assert Variable("subject") in r.body[0].variables()

    def test_external_prefixes_parameter(self):
        r = parse_rule(
            "[t: (?a zz:p ?b) -> (?b zz:p ?a)]", prefixes={"zz": "http://z.org/"}
        )
        assert r.body[0].p == URI("http://z.org/p")


class TestErrors:
    @pytest.mark.parametrize(
        "text,match",
        [
            ("[t: (?a ex:p ?b) -> (?b ex:p ?a)]", "unknown prefix"),
            (PREFIX + "[t: -> (?a ex:p ?a)]", None),  # empty body -> Rule error
            (PREFIX + "[t: (?a ex:p ?b) ->]", "no head"),
            (PREFIX + "[t: (?a ex:p ?b) -> (?b ex:p ?a)", "missing closing"),
            (PREFIX + "[t (?a ex:p ?b) -> (?b ex:p ?a)]", "expected"),
            (PREFIX + "[t: (?a ex:p) -> (?a ex:p ?a)]", None),
            ("junk", "expected"),
            (PREFIX + "[t: (?a bare ?b) -> (?a ex:p ?b)]", "bare name"),
        ],
    )
    def test_malformed(self, text, match):
        with pytest.raises((RuleParseError, ValueError), match=match):
            parse_rules(text)

    def test_parse_rule_rejects_multiple(self):
        with pytest.raises(RuleParseError, match="exactly one"):
            parse_rule(
                PREFIX + "[a: (?x ex:p ?y) -> (?y ex:p ?x)]"
                "[b: (?x ex:q ?y) -> (?y ex:q ?x)]"
            )

    def test_unsafe_rule_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unsafe"):
            parse_rule(PREFIX + "[t: (?a ex:p ?b) -> (?a ex:p ?c)]")
