"""Run the doctests embedded in the library's docstrings.

Keeps every usage example in the API documentation executable; a doctest
that rots fails here.
"""

import doctest

import pytest

import repro.analysis.report
import repro.datalog.analysis
import repro.datalog.ast
import repro.datalog.backward
import repro.datalog.engine
import repro.datalog.parser
import repro.graphpart.csr
import repro.graphpart.kway
import repro.graphpart.quality
import repro.owl.compiler
import repro.owl.reasoner
import repro.owl.vocabulary
import repro.parallel.comm
import repro.parallel.hybrid
import repro.parallel.worker
import repro.partitioning.data_generic
import repro.partitioning.policies
import repro.partitioning.rulepart
import repro.perfmodel.model
import repro.rdf.dictionary
import repro.rdf.graph
import repro.rdf.namespace
import repro.rdf.ntriples
import repro.rdf.terms
import repro.util.seeding
import repro.util.tables
import repro.util.timing
import repro.datasets.lubm
import repro.datasets.uobm
import repro.datasets.mdc
import repro.datalog.serializer
import repro.owl.kb
import repro.parallel.query
import repro.parallel.trace
import repro.rdf.query
import repro.rdf.sparql
import repro.rdf.turtle

MODULES = [
    repro.analysis.report,
    repro.rdf.query,
    repro.rdf.sparql,
    repro.rdf.turtle,
    repro.datalog.serializer,
    repro.owl.kb,
    repro.parallel.query,
    repro.parallel.trace,
    repro.rdf.terms,
    repro.rdf.graph,
    repro.rdf.namespace,
    repro.rdf.ntriples,
    repro.rdf.dictionary,
    repro.datalog.ast,
    repro.datalog.parser,
    repro.datalog.engine,
    repro.datalog.backward,
    repro.datalog.analysis,
    repro.owl.vocabulary,
    repro.owl.compiler,
    repro.owl.reasoner,
    repro.graphpart.csr,
    repro.graphpart.kway,
    repro.graphpart.quality,
    repro.partitioning.data_generic,
    repro.partitioning.policies,
    repro.partitioning.rulepart,
    repro.parallel.comm,
    repro.parallel.worker,
    repro.parallel.hybrid,
    repro.perfmodel.model,
    repro.util.seeding,
    repro.util.tables,
    repro.util.timing,
    repro.datasets.lubm,
    repro.datasets.uobm,
    repro.datasets.mdc,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
