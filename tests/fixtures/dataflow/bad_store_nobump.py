"""ST300 fixture: ``remove`` mutates state but forgets the version bump."""


class TinyStore:
    def __init__(self):
        self._rows = []
        self._version = 0

    def add(self, row):
        self._rows.append(row)
        self._version += 1

    def remove(self, row):
        self._rows.remove(row)  # missing: self._version += 1
