"""ST301 fixture: ``view`` serves the cache without any staleness guard."""


class TinyCachedStore:
    def __init__(self):
        self._rows = []
        self._n = 0
        self._view_cache = None

    def add(self, row):
        self._rows.append(row)
        self._n += 1
        self._view_cache = None

    def view(self):
        # Stale read: never compares the cache against self._n, so a
        # populated cache survives later add() calls in a refactor that
        # drops the invalidation line.
        return self._view_cache

    def rebuild(self):
        self._view_cache = sorted(self._rows)
        return self._view_cache
