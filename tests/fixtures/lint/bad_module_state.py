"""CX104 fixture: module-level mutable state (exactly 3 findings)."""

from collections import defaultdict

CACHE = {}  # CX104
SEEN: set = set()  # CX104 (annotated assignment)
# Aliased factory calls count too; tuples and dunders do not.

BUCKETS = defaultdict(list)  # CX104

FROZEN = ("a", "b")  # immutable: not flagged
__all__ = ["FROZEN"]  # dunder convention: not flagged


def local_state() -> dict:
    table = {}  # function-local: not flagged
    return table
