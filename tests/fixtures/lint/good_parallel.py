"""Clean fixture: idiomatic supervised-runtime code, zero findings."""

import random

POLL_INTERVAL = 0.25  # immutable module constant: fine


class Supervisor:
    def __init__(self, outbox, seed: int) -> None:
        self.outbox = outbox
        self.rng = random.Random(seed)
        self.pending: dict[int, object] = {}  # instance state: fine

    def get(self, deadline: float) -> object:
        return self.outbox.get(timeout=POLL_INTERVAL)

    def stop(self, proc) -> None:
        proc.join(timeout=5.0)
        try:
            proc.close()
        except ValueError:
            pass  # narrow except with a reason: fine
