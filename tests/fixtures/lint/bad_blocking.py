"""CX101 fixture: unbounded blocking waits (exactly 3 findings)."""

import multiprocessing


def drain(inbox: "multiprocessing.Queue") -> list:
    out = []
    while True:
        out.append(inbox.get())  # CX101: no timeout
    return out


def wait_for(proc: multiprocessing.Process) -> None:
    proc.join()  # CX101: no timeout


def pull(conn_queue) -> object:
    return conn_queue.get(True)  # CX101: explicit block=True, no timeout


def fine(inbox, proc, table: dict) -> None:
    inbox.get(timeout=0.5)
    inbox.get(block=False)
    proc.join(2.0)
    table.get("key", 0)  # dict.get — not a blocking wait
    ", ".join(["a", "b"])  # str.join — not a process join
