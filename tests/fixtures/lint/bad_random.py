"""CX105 fixture: unseeded randomness (exactly 4 findings)."""

import random

import numpy as np


def pick(items: list) -> object:
    random.shuffle(items)  # CX105: module-global generator
    return random.choice(items)  # CX105


def sample_matrix(n: int):
    rng = np.random.default_rng()  # CX105: no seed
    return np.random.rand(n, n)  # CX105: legacy global


def fine(n: int, seed: int):
    rng = np.random.default_rng(seed)
    local = random.Random(seed)
    return rng.random(n), local.random()
