"""CX102/CX103 fixture: 2×CX102 + 2×CX103 (bare+swallow share a site)."""


def swallow_everything(work) -> None:
    try:
        work()
    except:  # CX102 (bare) + CX103 (body is pass)
        pass


def catch_base(work) -> None:
    try:
        work()
    except BaseException:  # CX102
        raise RuntimeError("wrapped")


def silent_loop(items) -> None:
    for item in items:
        try:
            item.run()
        except Exception:  # CX103: swallowed
            continue


def fine(work) -> None:
    try:
        work()
    except ValueError:
        pass  # narrow: not flagged
    try:
        work()
    except Exception as exc:  # broad but handled: not flagged
        print(exc)
