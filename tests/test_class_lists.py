"""Tests for owl:intersectionOf / owl:unionOf compilation (pD* extensions)
and the star-join partitionability class they introduce."""

import pytest

from repro.datalog import parse_rules
from repro.datalog.analysis import (
    JoinClass,
    check_data_partitionable,
    classify_rule,
)
from repro.owl import HorstReasoner, compile_ontology
from repro.owl.compiler import read_rdf_list
from repro.owl.vocabulary import OWL, RDF
from repro.parallel import ParallelReasoner
from repro.rdf import Graph, Triple, URI
from repro.rdf.terms import BNode


def u(name):
    return URI(f"ex:{name}")


def rdf_list(graph, *members, tag="l"):
    """Build an rdf:first/rest chain; returns the head node."""
    head = RDF.nil
    for i, member in reversed(list(enumerate(members))):
        node = BNode(f"{tag}{i}")
        graph.add_spo(node, RDF.first, member)
        graph.add_spo(node, RDF.rest, head)
        head = node
    return head


@pytest.fixture
def tbox():
    g = Graph()
    g.add_spo(u("C"), OWL.intersectionOf, rdf_list(g, u("A"), u("B"), tag="i"))
    g.add_spo(u("U"), OWL.unionOf, rdf_list(g, u("A"), u("B"), tag="un"))
    return g


class TestReadRdfList:
    def test_reads_members_in_order(self, tbox):
        head = tbox.value(u("C"), OWL.intersectionOf)
        assert read_rdf_list(tbox, head) == [u("A"), u("B")]

    def test_empty_list_is_nil(self):
        assert read_rdf_list(Graph(), RDF.nil) == []

    def test_malformed_list_raises(self):
        g = Graph()
        node = BNode("broken")
        g.add_spo(node, RDF.first, u("A"))  # no rdf:rest
        with pytest.raises(ValueError, match="malformed"):
            read_rdf_list(g, node)

    def test_cyclic_list_raises(self):
        g = Graph()
        a, b = BNode("ca"), BNode("cb")
        g.add_spo(a, RDF.first, u("A"))
        g.add_spo(a, RDF.rest, b)
        g.add_spo(b, RDF.first, u("B"))
        g.add_spo(b, RDF.rest, a)
        with pytest.raises(ValueError, match="cyclic"):
            read_rdf_list(g, a)


class TestStarJoinClass:
    def test_intersection_rule_is_star_join(self):
        r = parse_rules(
            "@prefix ex: <ex:>\n@prefix rdf: <rdf:>\n"
            "[i: (?x rdf:type ex:A) (?x rdf:type ex:B) (?x rdf:type ex:C)"
            " -> (?x rdf:type ex:D)]"
        )[0]
        assert classify_rule(r) is JoinClass.STAR_JOIN
        check_data_partitionable([r])  # must pass

    def test_three_atoms_without_common_variable_is_multi_join(self):
        r = parse_rules(
            "@prefix ex: <ex:>\n"
            "[m: (?a ex:p ?b) (?b ex:p ?c) (?c ex:p ?d) -> (?a ex:p ?d)]"
        )[0]
        assert classify_rule(r) is JoinClass.MULTI_JOIN
        with pytest.raises(ValueError):
            check_data_partitionable([r])

    def test_star_on_object_positions(self):
        r = parse_rules(
            "@prefix ex: <ex:>\n"
            "[s: (?a ex:p ?x) (?b ex:q ?x) (?c ex:r ?x) -> (?x ex:popular ?x)]"
        )[0]
        assert classify_rule(r) is JoinClass.STAR_JOIN


class TestSemantics:
    def test_intersection_both_directions(self, tbox):
        reasoner = HorstReasoner(tbox)
        data = Graph()
        data.add_spo(u("both"), RDF.type, u("A"))
        data.add_spo(u("both"), RDF.type, u("B"))
        data.add_spo(u("onlyA"), RDF.type, u("A"))
        closed = reasoner.materialize(data).graph
        assert Triple(u("both"), RDF.type, u("C")) in closed
        assert Triple(u("onlyA"), RDF.type, u("C")) not in closed
        # converse: C implies the members
        back = reasoner.materialize(
            Graph([Triple(u("z"), RDF.type, u("C"))])
        ).graph
        assert Triple(u("z"), RDF.type, u("A")) in back
        assert Triple(u("z"), RDF.type, u("B")) in back

    def test_union_members_imply_class(self, tbox):
        reasoner = HorstReasoner(tbox)
        data = Graph([Triple(u("onlyB"), RDF.type, u("B"))])
        closed = reasoner.materialize(data).graph
        assert Triple(u("onlyB"), RDF.type, u("U")) in closed

    def test_union_has_no_unsound_converse(self, tbox):
        reasoner = HorstReasoner(tbox)
        closed = reasoner.materialize(
            Graph([Triple(u("z"), RDF.type, u("U"))])
        ).graph
        assert Triple(u("z"), RDF.type, u("A")) not in closed

    def test_forward_backward_agree(self, tbox):
        reasoner = HorstReasoner(tbox)
        data = Graph()
        data.add_spo(u("both"), RDF.type, u("A"))
        data.add_spo(u("both"), RDF.type, u("B"))
        fwd = reasoner.materialize(data, strategy="forward")
        bwd = reasoner.materialize(data, strategy="backward")
        assert fwd.graph == bwd.graph

    def test_per_template_counts(self, tbox):
        crs = compile_ontology(tbox)
        assert crs.per_template["unionOf"] == 2
        assert crs.per_template["intersectionOf"] == 3  # 1 star + 2 converse


class TestParallelWithStarJoins:
    @pytest.mark.parametrize("approach", ["data", "rule"])
    def test_parallel_matches_serial(self, tbox, approach):
        data = Graph()
        for i in range(6):
            data.add_spo(u(f"e{i}"), RDF.type, u("A"))
            if i % 2 == 0:
                data.add_spo(u(f"e{i}"), RDF.type, u("B"))
        serial = HorstReasoner(tbox).materialize(data)
        pr = ParallelReasoner(tbox, k=3, approach=approach)
        result = pr.materialize(data)
        instance = Graph(t for t in result.graph if t not in pr.compiled.schema)
        assert instance == serial.graph
