"""Unit tests for the three dataset generators."""

import pytest

from repro.datasets import LUBM, MDC, UOBM
from repro.datasets.lubm import UB, LUBMGenerator, lubm_ontology
from repro.datasets.mdc import MDCNS, MDCGenerator, mdc_ontology
from repro.datasets.uobm import uobm_ontology
from repro.owl import HorstReasoner
from repro.owl.vocabulary import OWL, RDF, RDFS, is_schema_triple
from repro.rdf import Triple, URI


class TestLUBM:
    def test_deterministic_under_seed(self):
        a, b = LUBM(2, seed=5), LUBM(2, seed=5)
        assert a.data == b.data

    def test_seed_changes_data(self):
        assert LUBM(2, seed=1).data != LUBM(2, seed=2).data

    def test_size_scales_with_universities(self):
        small, large = LUBM(1), LUBM(4)
        assert 3.5 * len(small.data) < len(large.data) < 4.5 * len(small.data)

    def test_ontology_is_pure_schema(self):
        assert all(is_schema_triple(t) for t in lubm_ontology())

    def test_data_is_pure_instance(self):
        assert not any(is_schema_triple(t) for t in LUBM(1).data)

    def test_expected_entity_mix(self):
        data = LUBM(1).data
        students = sum(
            1 for _ in data.match(None, RDF.type, UB.UndergraduateStudent)
        )
        profs = sum(1 for _ in data.match(None, RDF.type, UB.FullProfessor))
        assert students > profs > 0

    def test_department_head_exists_per_department(self):
        data = LUBM(2, departments_per_university=2).data
        heads = sum(1 for _ in data.match(None, UB.headOf, None))
        assert heads == 4  # 2 universities x 2 departments

    def test_cross_university_degree_links(self):
        ds = LUBM(4, cross_university_fraction=1.0, seed=3)
        grouper = ds.domain_grouper
        cross = 0
        for t in ds.data.match(None, UB.undergraduateDegreeFrom, None):
            if grouper(t.s) != grouper(t.o):
                cross += 1
        assert cross > 0

    def test_domain_grouper_maps_to_university(self):
        gen = LUBMGenerator(2)
        grouper = gen.domain_grouper()
        assert grouper(gen.entity_uri(1, "Department0/Student3")) == \
            "http://www.University1.edu"
        assert grouper(URI("http://elsewhere.org/x")) is None

    def test_chair_inference_fires(self):
        ds = LUBM(1)
        closed = HorstReasoner(ds.ontology).materialize(ds.data).graph
        chairs = list(closed.match(None, RDF.type, UB.Chair))
        assert chairs, "the someValuesFrom restriction must classify heads"

    def test_invalid_university_count(self):
        with pytest.raises(ValueError):
            LUBM(0)


class TestUOBM:
    def test_extends_lubm_vocabulary(self):
        onto = uobm_ontology()
        assert Triple(UB.isFriendOf, RDF.type, OWL.SymmetricProperty) in onto
        assert next(onto.match(UB.Student, RDFS.subClassOf, None), None) is not None

    def test_has_cross_university_social_edges(self):
        ds = UOBM(3, cross_fraction=1.0, seed=1)
        grouper = ds.domain_grouper
        cross = sum(
            1
            for t in ds.data.match(None, UB.isFriendOf, None)
            if grouper(t.s) != grouper(t.o)
        )
        assert cross > 0

    def test_denser_than_lubm(self):
        """UOBM's defining property for this paper: worse separability.
        Compare graph-partitioning IR on equal-size inputs."""
        from repro.partitioning import (
            GraphPartitioningPolicy,
            compute_data_metrics,
            partition_data,
        )

        lubm = LUBM(3, seed=0)
        uobm = UOBM(3, seed=0)
        lubm_ir = compute_data_metrics(
            partition_data(lubm.data, GraphPartitioningPolicy(seed=0), 3),
            lubm.data,
        ).input_replication
        uobm_ir = compute_data_metrics(
            partition_data(uobm.data, GraphPartitioningPolicy(seed=0), 3),
            uobm.data,
        ).input_replication
        assert uobm_ir > lubm_ir

    def test_hometown_chains_disjoint(self):
        ds = UOBM(2, seed=4)
        seen = set()
        for t in ds.data.match(None, UB.hasSameHomeTownWith, None):
            # Each person appears in at most one chain: at most 2 hometown
            # edges (one in, one out), and chain interiors are unique.
            pass
        # Count degree per node in the hometown relation.
        from collections import Counter

        degree = Counter()
        for t in ds.data.match(None, UB.hasSameHomeTownWith, None):
            degree[t.s] += 1
            degree[t.o] += 1
        assert all(d <= 2 for d in degree.values())

    def test_deterministic(self):
        assert UOBM(2, seed=9).data == UOBM(2, seed=9).data


class TestMDC:
    def test_ontology_declares_transitive_hierarchy(self):
        onto = mdc_ontology()
        assert Triple(MDCNS.partOf, RDF.type, OWL.TransitiveProperty) in onto
        assert Triple(MDCNS.hasPart, OWL.inverseOf, MDCNS.partOf) in onto

    def test_partof_chains_have_configured_depth(self):
        ds = MDC(1, wells_per_field=1, hierarchy_depth=7, sensors_per_well=0)
        closed = HorstReasoner(ds.ontology).materialize(ds.data).graph
        well = MDCGenerator.entity_uri(0, "Well0")
        deepest = MDCGenerator.entity_uri(0, "Well0/L6")
        assert Triple(deepest, MDCNS.partOf, well) in closed

    def test_fields_nearly_disconnected(self):
        from repro.partitioning import (
            DomainPartitioningPolicy,
            compute_data_metrics,
            partition_data,
        )

        ds = MDC(4, seed=0)
        metrics = compute_data_metrics(
            partition_data(
                ds.data, DomainPartitioningPolicy(ds.domain_grouper), 4
            ),
            ds.data,
        )
        assert metrics.duplication < 0.1

    def test_transitive_closure_dominates_inference(self):
        ds = MDC(2)
        reasoner = HorstReasoner(ds.ontology)
        result = reasoner.materialize(ds.data)
        assert result.inferred_count > len(ds.data)

    def test_domain_grouper(self):
        gen = MDCGenerator(2)
        grouper = gen.domain_grouper()
        assert grouper(gen.entity_uri(1, "Well0")) == \
            "http://mdc.example.org/Field1"
        assert grouper(URI("http://elsewhere/x")) is None

    def test_deterministic(self):
        assert MDC(2, seed=3).data == MDC(2, seed=3).data

    def test_invalid_field_count(self):
        with pytest.raises(ValueError):
            MDC(0)


class TestRepr:
    def test_dataset_repr_mentions_sizes(self):
        ds = LUBM(1)
        assert "LUBM-1" in repr(ds)
        assert str(len(ds.data)) in repr(ds)
