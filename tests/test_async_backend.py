"""Differential tests for the asynchronous, id-encoded backend.

The contract: for any input and any delivery order, the async backend's
unioned output is set-equal to the serial fixpoint and to the lock-step
oracle — including when several workers concurrently mint dictionary ids
for the same runtime-derived term.
"""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog import NaiveEngine, parse_rules
from repro.owl import HorstReasoner
from repro.owl.compiler import compile_ontology
from repro.owl.vocabulary import OWL, RDF
from repro.parallel import (
    ParallelReasoner,
    PartitionWorker,
    run_async_inprocess,
    run_multiprocess_async,
)
from repro.parallel.async_backend import _make_router
from repro.partitioning import GraphPartitioningPolicy, HashPartitioningPolicy, partition_data, partition_rules
from repro.rdf import Graph, Triple, URI


def u(name):
    return URI(f"ex:{name}")


@pytest.fixture
def tbox():
    g = Graph()
    g.add_spo(u("partOf"), RDF.type, OWL.TransitiveProperty)
    g.add_spo(u("linkedTo"), RDF.type, OWL.SymmetricProperty)
    return g


@pytest.fixture
def data():
    g = Graph()
    for c in range(2):
        for i in range(6):
            g.add_spo(u(f"c{c}n{i}"), u("partOf"), u(f"c{c}n{i + 1}"))
    g.add_spo(u("c0n6"), u("partOf"), u("c1n0"))
    g.add_spo(u("c0n0"), u("linkedTo"), u("c1n3"))
    return g


def run_lockstep(partitions, rules_per_node, router_kind,
                 owner_table=None, rule_sets=None, max_rounds=1000):
    """In-process lock-step oracle with the exact configuration surface of
    the async executor (same router construction, term-level wire)."""
    k = len(partitions)
    router = _make_router(router_kind, owner_table, k, rule_sets)
    workers = [
        PartitionWorker(node_id=i, base=partitions[i],
                        rules=rules_per_node[i], router=router)
        for i in range(k)
    ]
    produced = [b for w in workers for b in w.bootstrap().outgoing]
    for _ in range(max_rounds):
        if not produced:
            break
        by_dest = {}
        for b in produced:
            by_dest.setdefault(b.dest, []).append(b)
        produced = [
            b
            for w in workers
            for b in w.step(by_dest.get(w.node_id, [])).outgoing
        ]
    else:
        raise RuntimeError("lock-step oracle did not terminate")
    union = Graph()
    for w in workers:
        union.update(iter(w.output_graph()))
    return union


class TestAsyncMatchesOracles:
    def test_data_routing_matches_serial_and_lockstep(self, tbox, data):
        crs = compile_ontology(tbox)
        serial = HorstReasoner(tbox).materialize(data).graph
        dp = partition_data(data, GraphPartitioningPolicy(seed=0), k=2)
        table = dict(dp.owner.table)
        lockstep = run_lockstep(dp.partitions, [crs.rules] * 2, "data",
                                owner_table=table)
        result = run_async_inprocess(dp.partitions, [crs.rules] * 2, "data",
                                     owner_table=table)
        assert result.graph == serial
        assert result.graph == lockstep

    def test_rule_routing_matches_serial_and_lockstep(self, tbox, data):
        crs = compile_ontology(tbox)
        serial = HorstReasoner(tbox).materialize(data).graph
        rp = partition_rules(crs.rules, k=2, seed=0)
        lockstep = run_lockstep([data, data], rp.rule_sets, "rule",
                                rule_sets=rp.rule_sets)
        result = run_async_inprocess([data, data], rp.rule_sets, "rule",
                                     rule_sets=rp.rule_sets)
        assert result.graph == serial
        assert result.graph == lockstep

    def test_counters_balance_at_termination(self, tbox, data):
        crs = compile_ontology(tbox)
        dp = partition_data(data, GraphPartitioningPolicy(seed=0), k=2)
        result = run_async_inprocess(dp.partitions, [crs.rules] * 2, "data",
                                     owner_table=dict(dp.owner.table))
        assert result.forwarded == result.consumed
        assert sum(result.consumed) == result.stats.messages

    def test_driver_encode_wire_matches_plain(self, tbox, data):
        plain = ParallelReasoner(tbox, k=3).materialize(data)
        encoded = ParallelReasoner(tbox, k=3, encode_wire=True).materialize(data)
        assert encoded.graph == plain.graph
        # Same tuples crossed the wire; the encoded run just paid fewer
        # bytes for them.
        assert encoded.stats.total_tuples_communicated() == \
            plain.stats.total_tuples_communicated()


class TestOutOfOrderDelivery:
    """The acceptance property: no hang and no premature stop when inbox
    arrival order is shuffled."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_shuffled_delivery_reaches_same_fixpoint(self, tbox, data, seed):
        crs = compile_ontology(tbox)
        serial = HorstReasoner(tbox).materialize(data).graph
        dp = partition_data(data, GraphPartitioningPolicy(seed=0), k=3)
        result = run_async_inprocess(
            dp.partitions, [crs.rules] * 3, "data",
            owner_table=dict(dp.owner.table),
            delivery="shuffle", seed=seed,
        )
        assert result.graph == serial
        assert result.forwarded == result.consumed

    def test_lifo_delivery_reaches_same_fixpoint(self, tbox, data):
        crs = compile_ontology(tbox)
        serial = HorstReasoner(tbox).materialize(data).graph
        dp = partition_data(data, GraphPartitioningPolicy(seed=0), k=3)
        result = run_async_inprocess(
            dp.partitions, [crs.rules] * 3, "data",
            owner_table=dict(dp.owner.table), delivery="lifo",
        )
        assert result.graph == serial

    def test_unknown_delivery_rejected(self, data):
        with pytest.raises(ValueError):
            run_async_inprocess([data], [[]], "data", owner_table={},
                                delivery="random")


class TestDeltaDictionaryReconciliation:
    """Terms first derived at runtime (absent from the base dictionary)
    are minted concurrently on several workers; the outputs must still
    reconcile to one term."""

    RULES = (
        "@prefix ex: <ex:>\n"
        "@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
        "[mint: (?a ex:p ?b) -> (?a rdf:type ex:FreshClass)]\n"
        "[copy: (?a ex:p ?b) -> (?a ex:freshPred ?b)]\n"
        "[join: (?a ex:freshPred ?b) (?b ex:freshPred ?c) -> (?a ex:p ?c)]\n"
    )

    def test_concurrent_minting_reconciles(self):
        rules = parse_rules(self.RULES)
        g = Graph()
        # Two disjoint chains -> land on different partitions, both fire
        # the minting rules independently.
        for c in range(2):
            for i in range(4):
                g.add_spo(u(f"m{c}n{i}"), u("p"), u(f"m{c}n{i + 1}"))
        serial = g.copy()
        NaiveEngine(rules).run(serial)

        dp = partition_data(g, HashPartitioningPolicy(), k=2)
        # Hash partitioning has no explicit table; an empty TableOwner
        # falls back to the identical salt-0 hash on every worker.
        # seed_rule_terms=False keeps the rules' constants out of the base
        # dictionary, forcing every one of them through the delta path.
        result = run_async_inprocess(dp.partitions, [rules] * 2, "data",
                                     owner_table={}, delivery="shuffle",
                                     seed=11, seed_rule_terms=False)
        assert result.graph == serial
        # The fresh terms shipped as delta entries, not as re-serialized
        # term text per tuple.
        assert result.stats.delta_terms > 0
        # Both chains' subjects got typed with the one reconciled term.
        assert Triple(u("m0n0"), RDF.type, u("FreshClass")) in result.graph
        assert Triple(u("m1n0"), RDF.type, u("FreshClass")) in result.graph


# --- hypothesis differential: naive == lock-step == async -------------------

_name = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=4)
_uris = st.builds(lambda s: URI("ex:" + s), _name)
_preds = st.builds(lambda s: URI("p:" + s), st.sampled_from(["p", "q"]))
_triples = st.builds(Triple, _uris, _preds, _uris)
_graphs = st.builds(Graph, st.lists(_triples, max_size=25))

_DIFF_RULES = parse_rules(
    "@prefix ex: <ex:>\n"
    "@prefix p: <p:>\n"
    "[chain: (?x p:p ?y) (?y p:p ?z) -> (?x p:q ?z)]\n"
    "[mint: (?x p:q ?y) -> (?x p:p ex:minted)]\n"
)


@given(_graphs, st.integers(2, 4), st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_naive_equals_lockstep_equals_async(g, k, seed):
    """Random graphs, a chain rule plus a constant-minting rule (ex:minted
    is never in the base dictionary): serial naive fixpoint, lock-step
    relay, and shuffled async execution must agree exactly."""
    serial = g.copy()
    NaiveEngine(_DIFF_RULES).run(serial)

    dp = partition_data(g, HashPartitioningPolicy(), k=k)
    rules_per_node = [_DIFF_RULES] * k

    lockstep = run_lockstep(dp.partitions, rules_per_node, "data",
                            owner_table={})
    async_result = run_async_inprocess(dp.partitions, rules_per_node, "data",
                                       owner_table={},
                                       delivery="shuffle", seed=seed)
    assert lockstep == serial
    assert async_result.graph == serial


# --- real processes ----------------------------------------------------------

@pytest.mark.slow
def test_multiprocess_async_matches_serial_data(tbox, data):
    crs = compile_ontology(tbox)
    serial = HorstReasoner(tbox).materialize(data).graph
    dp = partition_data(data, GraphPartitioningPolicy(seed=0), k=2)
    union = run_multiprocess_async(
        dp.partitions, [crs.rules] * 2, "data",
        owner_table=dict(dp.owner.table),
    )
    assert union == serial


@pytest.mark.slow
def test_multiprocess_async_matches_serial_rule(tbox, data):
    crs = compile_ontology(tbox)
    serial = HorstReasoner(tbox).materialize(data).graph
    rp = partition_rules(crs.rules, k=2, seed=0)
    union = run_multiprocess_async(
        [data, data], rp.rule_sets, "rule", rule_sets=rp.rule_sets,
    )
    assert union == serial


def test_mismatched_configuration_rejected(data):
    with pytest.raises(ValueError):
        run_async_inprocess([data, data], [[]], "data", owner_table={})
