"""Unit tests for the multilevel graph partitioner, with networkx as the
structural oracle where helpful."""

import networkx as nx
import numpy as np
import pytest

from repro.graphpart import (
    CSRGraph,
    MultilevelPartitioner,
    balance,
    edge_cut,
    part_weights,
    partition_graph,
)
from repro.graphpart.coarsen import coarsen, contract, heavy_edge_matching
from repro.graphpart.initial import greedy_growing
from repro.util.seeding import rng_for


def clustered(num_clusters=4, size=60, intra=240, inter=8, seed=0):
    rng = rng_for(seed, "test-clustered")
    edges = []
    n = num_clusters * size
    for c in range(num_clusters):
        base = c * size
        for _ in range(intra):
            edges.append((base + rng.randrange(size), base + rng.randrange(size)))
    for _ in range(inter):
        edges.append((rng.randrange(n), rng.randrange(n)))
    return CSRGraph.from_edges(n, np.asarray(edges, dtype=np.int64))


class TestCSRGraph:
    def test_from_edges_merges_duplicates(self):
        g = CSRGraph.from_edges(3, np.array([[0, 1], [1, 0], [0, 1]]))
        assert g.num_edges == 1
        assert g.edge_weight_between(0, 1) == 3

    def test_self_loops_dropped(self):
        g = CSRGraph.from_edges(2, np.array([[0, 0], [0, 1]]))
        assert g.num_edges == 1

    def test_degrees_and_neighbors(self):
        g = CSRGraph.from_edges(4, np.array([[0, 1], [0, 2], [0, 3]]))
        assert g.degree(0) == 3
        assert set(g.neighbors(0).tolist()) == {1, 2, 3}
        assert g.degree(1) == 1

    def test_iter_edges_each_once(self):
        g = CSRGraph.from_edges(4, np.array([[0, 1], [1, 2], [2, 3]]))
        assert len(list(g.iter_edges())) == 3

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, np.array([[0, 5]]))

    def test_vertex_weights_default_ones(self):
        g = CSRGraph.from_edges(3, np.array([[0, 1]]))
        assert g.total_vertex_weight() == 3

    def test_empty_graph(self):
        g = CSRGraph.from_edges(5, np.empty((0, 2), dtype=np.int64))
        assert g.num_edges == 0
        assert g.degree(0) == 0


class TestCoarsening:
    def test_matching_is_symmetric(self):
        g = clustered()
        match = heavy_edge_matching(g, seed=1, level=0)
        for v in range(g.n):
            assert match[match[v]] == v

    def test_contract_preserves_total_weight(self):
        g = clustered()
        match = heavy_edge_matching(g, seed=1, level=0)
        coarse, cmap = contract(g, match)
        assert coarse.total_vertex_weight() == g.total_vertex_weight()
        assert coarse.n < g.n

    def test_contract_cmap_is_onto(self):
        g = clustered()
        match = heavy_edge_matching(g, seed=1, level=0)
        coarse, cmap = contract(g, match)
        assert set(cmap.tolist()) == set(range(coarse.n))

    def test_coarsen_reaches_target(self):
        g = clustered()
        levels = coarsen(g, target_n=40, seed=1)
        assert levels[-1][0].n <= max(40, g.n)
        assert levels[-1][0].n < g.n


class TestInitialPartition:
    def test_covers_all_vertices(self):
        g = clustered()
        assignment = greedy_growing(g, 4, seed=2)
        assert (assignment >= 0).all() and (assignment < 4).all()

    def test_k1(self):
        g = clustered()
        assert (greedy_growing(g, 1, seed=0) == 0).all()

    def test_reasonable_balance(self):
        g = clustered()
        assignment = greedy_growing(g, 4, seed=2)
        weights = part_weights(g, assignment, 4)
        assert weights.max() <= 1.7 * g.total_vertex_weight() / 4


class TestKWay:
    def test_finds_cluster_structure(self):
        g = clustered(inter=6)
        report = MultilevelPartitioner(k=4, seed=3).partition(g)
        # Cross-cluster edges are the only ones worth cutting: the cut must
        # be in their order of magnitude, far below intra-cluster counts.
        assert report.edge_cut <= 12
        assert report.balance <= 1.1

    def test_balance_constraint_respected(self):
        g = clustered()
        report = MultilevelPartitioner(k=4, seed=3, balance_factor=1.05).partition(g)
        assert report.balance <= 1.15  # small slack: integer vertex moves

    def test_deterministic_under_seed(self):
        g = clustered()
        a = MultilevelPartitioner(k=4, seed=5).partition(g)
        b = MultilevelPartitioner(k=4, seed=5).partition(g)
        assert (a.assignment == b.assignment).all()

    def test_k1_everything_together(self):
        g = clustered()
        report = MultilevelPartitioner(k=1, seed=0).partition(g)
        assert report.edge_cut == 0
        assert (report.assignment == 0).all()

    def test_k_greater_than_n(self):
        g = CSRGraph.from_edges(3, np.array([[0, 1], [1, 2]]))
        report = MultilevelPartitioner(k=5, seed=0).partition(g)
        assert len(set(report.assignment.tolist())) == 3

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            MultilevelPartitioner(k=0)

    def test_beats_random_assignment(self):
        g = clustered()
        report = MultilevelPartitioner(k=4, seed=1).partition(g)
        rng = rng_for(9, "random-baseline")
        random_assignment = np.asarray(
            [rng.randrange(4) for _ in range(g.n)], dtype=np.int64
        )
        assert report.edge_cut < edge_cut(g, random_assignment) / 3

    def test_agreement_with_networkx_components(self):
        """Two disconnected cliques at k=2 must be split exactly along the
        component boundary (cut 0) — verified against networkx."""
        edges = []
        for base in (0, 10):
            for i in range(10):
                for j in range(i + 1, 10):
                    edges.append((base + i, base + j))
        g = CSRGraph.from_edges(20, np.asarray(edges))
        report = MultilevelPartitioner(k=2, seed=0).partition(g)
        assert report.edge_cut == 0
        nxg = nx.Graph(edges)
        components = list(nx.connected_components(nxg))
        for comp in components:
            assert len({int(report.assignment[v]) for v in comp}) == 1


class TestQualityMetrics:
    def test_edge_cut_counts_weights(self):
        g = CSRGraph.from_edges(
            3, np.array([[0, 1], [1, 2]]), edge_weights=np.array([5, 7])
        )
        assert edge_cut(g, np.array([0, 0, 1])) == 7
        assert edge_cut(g, np.array([0, 1, 0])) == 12

    def test_balance_perfect(self):
        g = CSRGraph.from_edges(4, np.array([[0, 1], [2, 3]]))
        assert balance(g, np.array([0, 0, 1, 1]), 2) == 1.0

    def test_partition_graph_convenience(self):
        report = partition_graph(4, np.array([[0, 1], [2, 3]]), k=2, seed=0)
        assert report.balance == 1.0
