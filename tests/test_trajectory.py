"""The benchmark trajectory appender (benchmarks/trajectory.py)."""

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# benchmarks/ is not a package; load the module off its file path.
_spec = importlib.util.spec_from_file_location(
    "bench_trajectory", REPO_ROOT / "benchmarks" / "trajectory.py"
)
assert _spec is not None and _spec.loader is not None
trajectory = importlib.util.module_from_spec(_spec)
sys.modules["bench_trajectory"] = trajectory
_spec.loader.exec_module(trajectory)


CORE = {
    "dataset": "LUBM(8)",
    "closure_triples": 11534,
    "speedup": 2.31,
    "columnar": {"seconds": 0.05, "triples_per_sec": 216619},
    "runstore": {"run_store": {"bytes_per_triple": 8.17}},
    "idquery": {"speedup": 51.3},
}

SERVING = {
    "levels": [{"concurrency": 1}, {"concurrency": 4}],
    "headline": {"concurrency": 4, "qps": 1100.5, "p50_ms": 2.1,
                 "p99_ms": 9.7, "cache_hit_rate": 0.9},
}


def test_summary_row_pulls_headline_fields():
    row = trajectory.summary_row(CORE, SERVING)
    assert row == {
        "dataset": "LUBM(8)",
        "closure_triples": 11534,
        "speedup": 2.31,
        "triples_per_sec": 216619,
        "bytes_per_triple": 8.17,
        "query_speedup": 51.3,
        "serving_qps": 1100.5,
        "serving_p99_ms": 9.7,
    }


def test_summary_row_tolerates_missing_sections():
    row = trajectory.summary_row({"dataset": "LUBM(1)", "speedup": 1.5})
    assert row["dataset"] == "LUBM(1)"
    assert row["speedup"] == 1.5
    assert row["triples_per_sec"] is None
    assert row["bytes_per_triple"] is None
    assert row["query_speedup"] is None
    assert row["serving_qps"] is None
    assert row["serving_p99_ms"] is None


def test_serving_snapshot_joins_the_row(tmp_path):
    core = tmp_path / "core.json"
    core.write_text(json.dumps(CORE), encoding="utf-8")
    serving = tmp_path / "serving.json"
    serving.write_text(json.dumps(SERVING), encoding="utf-8")
    traj = tmp_path / "traj.json"
    assert trajectory.append_snapshot(
        core, traj, date="2026-08-08", serving_path=serving) is True
    rows = json.loads(traj.read_text(encoding="utf-8"))
    assert rows[0]["serving_qps"] == 1100.5
    assert rows[0]["serving_p99_ms"] == 9.7
    # a missing serving snapshot degrades to None fields, not a failure
    assert trajectory.append_snapshot(
        core, traj, date="2026-08-09",
        serving_path=tmp_path / "absent.json") is True
    rows = json.loads(traj.read_text(encoding="utf-8"))
    assert rows[1]["serving_qps"] is None


def test_append_creates_then_dedups(tmp_path):
    core = tmp_path / "core.json"
    core.write_text(json.dumps(CORE), encoding="utf-8")
    traj = tmp_path / "traj.json"

    assert trajectory.append_snapshot(core, traj, date="2026-08-08") is True
    rows = json.loads(traj.read_text(encoding="utf-8"))
    assert len(rows) == 1 and rows[0]["date"] == "2026-08-08"

    # Same numbers on a later date: skipped, file unchanged.
    assert trajectory.append_snapshot(core, traj, date="2026-08-09") is False
    assert json.loads(traj.read_text(encoding="utf-8")) == rows

    # Changed numbers append a second row.
    improved = dict(CORE, speedup=2.5)
    core.write_text(json.dumps(improved), encoding="utf-8")
    assert trajectory.append_snapshot(core, traj, date="2026-08-10") is True
    rows = json.loads(traj.read_text(encoding="utf-8"))
    assert len(rows) == 2 and rows[1]["speedup"] == 2.5


def test_append_rejects_non_list_trajectory(tmp_path):
    core = tmp_path / "core.json"
    core.write_text(json.dumps(CORE), encoding="utf-8")
    traj = tmp_path / "traj.json"
    traj.write_text("{}", encoding="utf-8")
    try:
        trajectory.append_snapshot(core, traj, date="2026-08-08")
    except ValueError as exc:
        assert "JSON list" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("expected ValueError on non-list trajectory")


def test_committed_trajectory_matches_committed_core():
    """The committed trajectory's latest row must track BENCH_core.json —
    a new snapshot without the appended row fails here, which is the
    'called from bench CI' contract enforced locally."""
    core = json.loads((REPO_ROOT / "BENCH_core.json").read_text("utf-8"))
    serving_path = REPO_ROOT / "BENCH_serving.json"
    serving = (json.loads(serving_path.read_text("utf-8"))
               if serving_path.exists() else None)
    rows = json.loads((REPO_ROOT / "BENCH_trajectory.json").read_text("utf-8"))
    assert rows, "BENCH_trajectory.json must hold at least one row"
    expected = trajectory.summary_row(core, serving)
    latest = {k: v for k, v in rows[-1].items() if k != "date"}
    assert latest == expected
