"""Tests for the materialized KB and the BGP query layer."""

import pytest

from repro.datalog.ast import Atom
from repro.datasets import LUBM
from repro.datasets.lubm import UB
from repro.owl import HorstReasoner, MaterializedKB
from repro.owl.vocabulary import OWL, RDF, RDFS
from repro.rdf import BGPQuery, Graph, Triple, URI
from repro.rdf.terms import Variable


def u(name):
    return URI(f"ex:{name}")


X, Y, Z = Variable("x"), Variable("y"), Variable("z")


@pytest.fixture
def tbox():
    g = Graph()
    g.add_spo(u("partOf"), RDF.type, OWL.TransitiveProperty)
    g.add_spo(u("Widget"), RDFS.subClassOf, u("Thing"))
    return g


def chain_triples(n, pred="partOf"):
    return [
        Triple(u(f"n{i}"), u(pred), u(f"n{i + 1}")) for i in range(n)
    ]


class TestBGPQuery:
    @pytest.fixture
    def graph(self):
        g = Graph()
        g.add_spo(u("alice"), u("knows"), u("bob"))
        g.add_spo(u("bob"), u("knows"), u("carol"))
        g.add_spo(u("alice"), RDF.type, u("Person"))
        g.add_spo(u("bob"), RDF.type, u("Person"))
        return g

    def test_single_pattern(self, graph):
        q = BGPQuery([Atom(X, u("knows"), Y)])
        assert q.count(graph) == 2

    def test_join(self, graph):
        q = BGPQuery([Atom(X, u("knows"), Y), Atom(Y, u("knows"), Z)])
        rows = list(q.execute(graph))
        assert len(rows) == 1
        assert rows[0][X] == u("alice") and rows[0][Z] == u("carol")

    def test_star_query(self, graph):
        q = BGPQuery([Atom(X, u("knows"), Y), Atom(X, RDF.type, u("Person"))])
        assert q.count(graph) == 2

    def test_no_solutions(self, graph):
        q = BGPQuery([Atom(X, u("hates"), Y)])
        assert q.count(graph) == 0
        assert not q.ask(graph)

    def test_ask(self, graph):
        assert BGPQuery([Atom(u("alice"), u("knows"), X)]).ask(graph)

    def test_select_projects_and_sorts(self, graph):
        q = BGPQuery([Atom(X, RDF.type, u("Person"))])
        rows = q.select(graph, X)
        assert rows == [(u("alice"),), (u("bob"),)]

    def test_select_unknown_variable_rejected(self, graph):
        q = BGPQuery([Atom(X, u("knows"), Y)])
        with pytest.raises(ValueError, match="not in query"):
            q.select(graph, Z)

    def test_initial_bindings_restrict(self, graph):
        q = BGPQuery([Atom(X, u("knows"), Y)])
        rows = list(q.execute(graph, bindings={X: u("bob")}))
        assert len(rows) == 1 and rows[0][Y] == u("carol")

    def test_empty_pattern_list_rejected(self):
        with pytest.raises(ValueError):
            BGPQuery([])

    def test_stats_count_probes(self, graph):
        q = BGPQuery([Atom(X, u("knows"), Y), Atom(Y, u("knows"), Z)])
        solutions, stats = q.execute_with_stats(graph)
        assert stats.solutions == len(solutions) == 1
        assert stats.index_probes > 0
        assert stats.patterns == 2

    def test_ordering_prefers_bound_patterns(self, graph):
        """The ground-subject pattern must be evaluated first regardless of
        the order it was written in."""
        q = BGPQuery([Atom(X, u("knows"), Y), Atom(u("alice"), u("knows"), X)])
        ordered = q._order(set())
        assert ordered[0].s == u("alice")


class TestMaterializedKB:
    def test_incremental_equals_bulk(self, tbox):
        triples = chain_triples(6)
        bulk = MaterializedKB(tbox)
        bulk.add(triples)
        incremental = MaterializedKB(tbox)
        for t in triples:
            incremental.add([t])
        assert bulk.graph == incremental.graph

    def test_matches_serial_reasoner(self, tbox):
        triples = chain_triples(5)
        kb = MaterializedKB(tbox)
        kb.add(triples)
        serial = HorstReasoner(tbox).materialize(Graph(triples))
        assert kb.graph == serial.graph

    def test_add_returns_new_base_count(self, tbox):
        kb = MaterializedKB(tbox)
        assert kb.add(chain_triples(3)) == 3
        assert kb.add(chain_triples(3)) == 0  # duplicates

    def test_sizes(self, tbox):
        kb = MaterializedKB(tbox)
        kb.add(chain_triples(4))
        assert kb.base_size == 4
        assert kb.size == 10  # C(5,2)
        assert kb.inferred_size == 6

    def test_incremental_load_work_is_local(self, tbox):
        """Adding one triple must not re-derive the whole closure."""
        kb = MaterializedKB(tbox)
        kb.add(chain_triples(30))
        full_work = kb.total_stats.work
        kb.add([Triple(u("n30"), u("partOf"), u("n31"))])
        assert kb.last_load_stats.work < full_work / 3

    def test_query_api(self, tbox):
        kb = MaterializedKB(tbox)
        kb.add(chain_triples(3))
        assert kb.ask([Atom(u("n0"), u("partOf"), u("n3"))])
        rows = list(kb.query([Atom(u("n0"), u("partOf"), X)]))
        assert len(rows) == 3

    def test_match_api(self, tbox):
        kb = MaterializedKB(tbox)
        kb.add(chain_triples(3))
        assert len(list(kb.match(s=u("n0")))) == 3

    def test_rebuild_after_manual_base_edit(self, tbox):
        kb = MaterializedKB(tbox)
        kb.add(chain_triples(4))
        kb.base_graph.discard(Triple(u("n1"), u("partOf"), u("n2")))
        kb.rebuild()
        assert Triple(u("n0"), u("partOf"), u("n4")) not in kb
        assert Triple(u("n2"), u("partOf"), u("n4")) in kb

    def test_parallel_bulk_load_equals_serial(self, tbox):
        data = Graph(chain_triples(8))
        parallel = MaterializedKB(tbox)
        parallel.bulk_load(data, parallel_k=3)
        serial = MaterializedKB(tbox)
        serial.bulk_load(data)
        assert parallel.graph == serial.graph

    def test_parallel_bulk_load_requires_empty(self, tbox):
        kb = MaterializedKB(tbox)
        kb.add(chain_triples(2))
        with pytest.raises(RuntimeError):
            kb.bulk_load(Graph(chain_triples(3)), parallel_k=2)

    def test_repr(self, tbox):
        kb = MaterializedKB(tbox)
        kb.add(chain_triples(2))
        assert "base=2" in repr(kb)


class TestKBOnLUBM:
    def test_lubm_queries(self):
        ds = LUBM(2, seed=0, departments_per_university=1,
                  faculty_per_department=2, students_per_faculty=3)
        kb = MaterializedKB(ds.ontology)
        kb.add(iter(ds.data))
        # LUBM query 4-ish: professors and who they work for (inferred
        # memberOf via the subproperty chain headOf < worksFor < memberOf).
        q = BGPQuery([
            Atom(X, RDF.type, UB.Professor),
            Atom(X, UB.memberOf, Y),
        ])
        solutions = list(q.execute(kb.graph))
        assert solutions, "subproperty + subclass closure must enable this"
        # Chairs are inferred, not asserted:
        assert kb.ask([Atom(X, RDF.type, UB.Chair)])
