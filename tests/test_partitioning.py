"""Unit tests for Algorithm 1 (data partitioning), its policies, the owner
functions, and the Section III metrics."""

import pytest

from repro.owl.vocabulary import RDF, RDFS
from repro.partitioning import (
    DomainPartitioningPolicy,
    GraphPartitioningPolicy,
    HashOwner,
    HashPartitioningPolicy,
    TableOwner,
    compute_data_metrics,
    output_replication,
    partition_data,
)
from repro.partitioning.data_generic import default_vocabulary
from repro.partitioning.policies import uri_prefix_grouper
from repro.rdf import Graph, Literal, Triple, URI
from repro.util.seeding import rng_for


def u(name):
    return URI(f"ex:{name}")


def clustered_graph(clusters=4, size=40, seed=0):
    """Cluster-structured instance data with URI layout Cluster<i>/e<j>."""
    rng = rng_for(seed, "test-part")
    g = Graph()
    for c in range(clusters):
        for i in range(size):
            g.add_spo(
                URI(f"http://Cluster{c}.org/e{i}"),
                u("rel"),
                URI(f"http://Cluster{c}.org/e{rng.randrange(size)}"),
            )
    for _ in range(4):
        a, b = rng.randrange(clusters), rng.randrange(clusters)
        g.add_spo(URI(f"http://Cluster{a}.org/e0"), u("rel"),
                  URI(f"http://Cluster{b}.org/e1"))
    return g


class TestOwnerFunctions:
    def test_table_owner_lookup(self):
        owner = TableOwner(2, {u("a"): 1})
        assert owner(u("a")) == 1

    def test_table_owner_fallback_is_deterministic(self):
        o1 = TableOwner(4, {})
        o2 = TableOwner(4, {})
        assert o1(u("unknown")) == o2(u("unknown"))

    def test_table_owner_validates_range(self):
        with pytest.raises(ValueError):
            TableOwner(2, {u("a"): 5})

    def test_hash_owner_stable_and_in_range(self):
        owner = HashOwner(8)
        values = [owner(u(f"r{i}")) for i in range(100)]
        assert all(0 <= v < 8 for v in values)
        assert values == [HashOwner(8)(u(f"r{i}")) for i in range(100)]

    def test_hash_owner_salt_changes_assignment(self):
        a, b = HashOwner(16, salt=0), HashOwner(16, salt=1)
        diffs = sum(a(u(f"r{i}")) != b(u(f"r{i}")) for i in range(64))
        assert diffs > 16

    def test_hash_owner_spreads(self):
        owner = HashOwner(4)
        buckets = [0] * 4
        for i in range(400):
            buckets[owner(u(f"node{i}"))] += 1
        assert min(buckets) > 50


class TestAlgorithm1:
    def test_every_triple_placed(self):
        g = clustered_graph()
        result = partition_data(g, HashPartitioningPolicy(), k=4)
        union = Graph()
        for p in result.partitions:
            union.update(iter(p))
        assert union == g

    def test_placement_on_owner_of_subject_and_object(self):
        g = clustered_graph()
        result = partition_data(g, HashPartitioningPolicy(), k=4)
        owner = result.owner
        for t in g:
            assert t in result.partitions[owner(t.s)]
            if t.o not in result.vocabulary and not t.o.is_literal:
                assert t in result.partitions[owner(t.o)]

    def test_at_most_two_copies(self):
        g = clustered_graph()
        result = partition_data(g, HashPartitioningPolicy(), k=4)
        for t in g:
            copies = sum(t in p for p in result.partitions)
            assert 1 <= copies <= 2

    def test_schema_stripped(self):
        g = clustered_graph()
        g.add_spo(u("A"), RDFS.subClassOf, u("B"))
        result = partition_data(g, HashPartitioningPolicy(), k=2)
        assert len(result.schema) == 1
        for p in result.partitions:
            assert Triple(u("A"), RDFS.subClassOf, u("B")) not in p

    def test_literal_objects_not_placement_targets(self):
        g = Graph([Triple(u("a"), u("p"), Literal("x"))])
        result = partition_data(g, HashPartitioningPolicy(), k=4)
        copies = sum(
            Triple(u("a"), u("p"), Literal("x")) in p for p in result.partitions
        )
        assert copies == 1

    def test_join_candidates_colocated(self):
        """The correctness invariant: two triples sharing a resource as
        subject/object must share a partition (on that resource's owner)."""
        g = clustered_graph()
        result = partition_data(g, GraphPartitioningPolicy(seed=0), k=4)
        owner = result.owner
        by_resource: dict = {}
        for t in g:
            for r in (t.s, t.o):
                if r.is_literal or r in result.vocabulary:
                    continue
                by_resource.setdefault(r, []).append(t)
        for resource, triples in by_resource.items():
            home = owner(resource)
            for t in triples:
                assert t in result.partitions[home]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            partition_data(Graph(), HashPartitioningPolicy(), k=0)


class TestVocabulary:
    def test_type_objects_are_vocabulary(self):
        g = Graph()
        g.add_spo(u("alice"), RDF.type, u("Student"))
        assert default_vocabulary(g) == {u("Student")}

    def test_term_used_as_subject_is_not_vocabulary(self):
        g = Graph()
        g.add_spo(u("alice"), RDF.type, u("Student"))
        g.add_spo(u("Student"), u("popularity"), u("high"))
        assert default_vocabulary(g) == set()

    def test_type_triples_single_copy(self):
        g = Graph()
        for i in range(20):
            g.add_spo(u(f"s{i}"), RDF.type, u("Student"))
        result = partition_data(g, HashPartitioningPolicy(), k=4)
        for t in g:
            assert sum(t in p for p in result.partitions) == 1


class TestPolicies:
    def test_graph_policy_separates_clusters(self):
        g = clustered_graph()
        result = partition_data(g, GraphPartitioningPolicy(seed=0), k=4)
        metrics = compute_data_metrics(result, g)
        assert metrics.duplication < 0.25

    def test_hash_policy_replicates_heavily(self):
        g = clustered_graph()
        hash_m = compute_data_metrics(
            partition_data(g, HashPartitioningPolicy(), k=4), g
        )
        graph_m = compute_data_metrics(
            partition_data(g, GraphPartitioningPolicy(seed=0), k=4), g
        )
        assert hash_m.duplication > 3 * graph_m.duplication

    def test_domain_policy_groups_by_key(self):
        g = clustered_graph()
        policy = DomainPartitioningPolicy(uri_prefix_grouper(r"Cluster\d+"))
        result = partition_data(g, policy, k=4)
        metrics = compute_data_metrics(result, g)
        assert metrics.duplication < 0.15

    def test_domain_policy_balances_groups(self):
        g = clustered_graph(clusters=8, size=20)
        policy = DomainPartitioningPolicy(uri_prefix_grouper(r"Cluster\d+"))
        result = partition_data(g, policy, k=4)
        nodes = result.nodes_per_partition
        assert max(nodes) <= 2 * min(nodes)

    def test_domain_policy_ungrouped_fall_back_to_hash(self):
        policy = DomainPartitioningPolicy(lambda term: None)
        g = clustered_graph(clusters=1, size=30)
        result = partition_data(g, policy, k=3)
        assert sum(len(p) for p in result.partitions) >= len(g)

    def test_uri_prefix_grouper(self):
        grouper = uri_prefix_grouper(r"University\d+")
        assert grouper(URI("http://www.University7.edu/x")) == "University7"
        assert grouper(URI("http://elsewhere.org/x")) is None
        assert grouper(Literal("x")) is None


class TestMetrics:
    def test_bal_zero_for_equal_partitions(self):
        from repro.partitioning.metrics import _stddev

        assert _stddev([10, 10, 10]) == 0.0
        assert _stddev([]) == 0.0
        assert _stddev([0, 10]) == 5.0

    def test_ir_one_means_no_replication(self):
        g = Graph()
        g.add_spo(URI("http://Cluster0.org/a"), u("p"), URI("http://Cluster0.org/b"))
        g.add_spo(URI("http://Cluster1.org/c"), u("p"), URI("http://Cluster1.org/d"))
        policy = DomainPartitioningPolicy(uri_prefix_grouper(r"Cluster\d+"))
        metrics = compute_data_metrics(partition_data(g, policy, k=2), g)
        assert metrics.input_replication == 1.0

    def test_output_replication(self):
        g1 = Graph([Triple(u("a"), u("p"), u("b"))])
        g2 = Graph([Triple(u("a"), u("p"), u("b")),
                    Triple(u("c"), u("p"), u("d"))])
        # 3 tuples held across nodes, 2 distinct.
        assert output_replication([g1, g2]) == pytest.approx(1.5)

    def test_output_replication_empty(self):
        assert output_replication([Graph(), Graph()]) == 1.0

    def test_table_row_shape(self):
        g = clustered_graph()
        metrics = compute_data_metrics(
            partition_data(g, HashPartitioningPolicy(), k=2), g
        )
        row = metrics.row()
        assert row[0] == "hash" and row[1] == 2
