"""Tests for the dataset-generator CLI."""

import pytest

from repro.datasets.cli import main
from repro.rdf import Graph, parse_ntriples


def test_writes_combined_file(tmp_path, capsys):
    out = tmp_path / "kb.nt"
    assert main(["lubm", "-n", "1", "-o", str(out)]) == 0
    g = Graph(parse_ntriples(out.read_text(encoding="utf-8")))
    assert len(g) > 100


def test_stdout_default(capsys):
    assert main(["mdc", "-n", "1", "--data-only"]) == 0
    out = capsys.readouterr().out
    assert out.count(" .\n") > 10


def test_ontology_only(tmp_path):
    out = tmp_path / "tbox.nt"
    assert main(["uobm", "-n", "1", "--ontology-only", "-o", str(out)]) == 0
    g = Graph(parse_ntriples(out.read_text(encoding="utf-8")))
    from repro.owl.vocabulary import is_schema_triple

    assert all(is_schema_triple(t) for t in g)


def test_data_only_excludes_schema(tmp_path):
    out = tmp_path / "abox.nt"
    assert main(["lubm", "-n", "1", "--data-only", "-o", str(out)]) == 0
    g = Graph(parse_ntriples(out.read_text(encoding="utf-8")))
    from repro.owl.vocabulary import is_schema_triple

    assert not any(is_schema_triple(t) for t in g)


def test_stats_to_stderr(tmp_path, capsys):
    out = tmp_path / "kb.nt"
    main(["lubm", "-n", "1", "--stats", "-o", str(out)])
    err = capsys.readouterr().err
    assert "LUBM-1" in err and "resources" in err


def test_seed_changes_output(tmp_path):
    a, b = tmp_path / "a.nt", tmp_path / "b.nt"
    main(["lubm", "-n", "2", "--data-only", "--seed", "1", "-o", str(a)])
    main(["lubm", "-n", "2", "--data-only", "--seed", "2", "-o", str(b)])
    assert a.read_text() != b.read_text()


def test_output_is_sorted_canonical(tmp_path):
    a, b = tmp_path / "a.nt", tmp_path / "b.nt"
    main(["mdc", "-n", "1", "-o", str(a)])
    main(["mdc", "-n", "1", "-o", str(b)])
    assert a.read_text() == b.read_text()


def test_mutually_exclusive_flags_rejected(tmp_path):
    with pytest.raises(SystemExit):
        main(["lubm", "--ontology-only", "--data-only"])
