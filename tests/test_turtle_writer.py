"""Tests for the Turtle serializer."""

import pytest

from repro.datasets import LUBM, MDC
from repro.rdf import Graph, Literal, Triple, URI
from repro.rdf.terms import BNode
from repro.rdf.turtle import RDF_TYPE, parse_turtle_graph, serialize_turtle

EX = "http://x.org/"


def u(name):
    return URI(EX + name)


class TestSerializeTurtle:
    def test_round_trip_small(self):
        g = Graph()
        g.add_spo(u("s"), RDF_TYPE, u("T"))
        g.add_spo(u("s"), u("p"), u("o1"))
        g.add_spo(u("s"), u("p"), u("o2"))
        g.add_spo(u("s"), u("q"), Literal('va"l', language="en"))
        g.add_spo(BNode("b"), u("p"), Literal("x\ny"))
        doc = serialize_turtle(g, {"ex": EX})
        assert parse_turtle_graph(doc) == g

    def test_round_trip_lubm(self):
        ds = LUBM(1)
        g = ds.ontology.union(ds.data)
        doc = serialize_turtle(
            g, {"ub": "http://repro.example.org/univ-bench#"}
        )
        assert parse_turtle_graph(doc) == g

    def test_round_trip_mdc(self):
        ds = MDC(1)
        g = ds.ontology.union(ds.data)
        assert parse_turtle_graph(serialize_turtle(g)) == g

    def test_uses_a_keyword(self):
        g = Graph([Triple(u("s"), RDF_TYPE, u("T"))])
        doc = serialize_turtle(g, {"ex": EX})
        assert " a ex:T" in doc

    def test_groups_by_subject(self):
        g = Graph()
        g.add_spo(u("s"), u("p"), u("a"))
        g.add_spo(u("s"), u("q"), u("b"))
        doc = serialize_turtle(g, {"ex": EX})
        # One subject block, joined with ';'.
        assert doc.count("ex:s ") == 1
        assert ";" in doc

    def test_object_lists_with_comma(self):
        g = Graph()
        g.add_spo(u("s"), u("p"), u("a"))
        g.add_spo(u("s"), u("p"), u("b"))
        doc = serialize_turtle(g, {"ex": EX})
        assert ", " in doc

    def test_deterministic(self):
        g = Graph()
        for i in range(10):
            g.add_spo(u(f"s{i}"), u("p"), u(f"o{i}"))
        assert serialize_turtle(g, {"ex": EX}) == serialize_turtle(g, {"ex": EX})

    def test_prefix_declarations_emitted(self):
        g = Graph([Triple(u("s"), u("p"), u("o"))])
        doc = serialize_turtle(g, {"ex": EX})
        assert doc.startswith("@prefix ex: <http://x.org/> .")

    def test_unprefixed_iris_absolute(self):
        g = Graph([Triple(URI("http://other.org/s"), u("p"), u("o"))])
        doc = serialize_turtle(g, {"ex": EX})
        assert "<http://other.org/s>" in doc

    def test_empty_graph(self):
        assert parse_turtle_graph(serialize_turtle(Graph())) == Graph()
