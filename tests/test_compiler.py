"""Unit tests for ontology -> instance-rule compilation."""

import pytest

from repro.datalog.analysis import JoinClass, classify_rule
from repro.owl import compile_ontology, saturate_schema
from repro.owl.compiler import schema_can_produce_sameas
from repro.owl.vocabulary import OWL, RDF, RDFS
from repro.rdf import Graph, Triple, URI


def u(name):
    return URI(f"ex:{name}")


class TestSaturation:
    def test_subclass_transitivity(self):
        g = Graph()
        g.add_spo(u("A"), RDFS.subClassOf, u("B"))
        g.add_spo(u("B"), RDFS.subClassOf, u("C"))
        saturated = saturate_schema(g)
        assert Triple(u("A"), RDFS.subClassOf, u("C")) in saturated

    def test_equivalent_class_expands_to_mutual_subclass(self):
        g = Graph()
        g.add_spo(u("A"), OWL.equivalentClass, u("B"))
        saturated = saturate_schema(g)
        assert Triple(u("A"), RDFS.subClassOf, u("B")) in saturated
        assert Triple(u("B"), RDFS.subClassOf, u("A")) in saturated

    def test_domain_inherited_through_subproperty(self):
        g = Graph()
        g.add_spo(u("p"), RDFS.subPropertyOf, u("q"))
        g.add_spo(u("q"), RDFS.domain, u("C"))
        saturated = saturate_schema(g)
        assert Triple(u("p"), RDFS.domain, u("C")) in saturated

    def test_input_not_mutated(self):
        g = Graph()
        g.add_spo(u("A"), RDFS.subClassOf, u("B"))
        g.add_spo(u("B"), RDFS.subClassOf, u("C"))
        saturate_schema(g)
        assert len(g) == 2


class TestCompilation:
    def test_subclass_compiles_zero_join_type_rule(self):
        g = Graph([Triple(u("A"), RDFS.subClassOf, u("B"))])
        crs = compile_ontology(g)
        rdfs9 = [r for r in crs.rules if r.name.startswith("rdfs9")]
        assert len(rdfs9) == 1
        assert classify_rule(rdfs9[0]) is JoinClass.ZERO_JOIN

    def test_transitive_property_compiles_single_join(self):
        g = Graph([Triple(u("p"), RDF.type, OWL.TransitiveProperty)])
        crs = compile_ontology(g)
        rdfp4 = [r for r in crs.rules if r.name.startswith("rdfp4")]
        assert len(rdfp4) == 1
        assert classify_rule(rdfp4[0]) is JoinClass.SINGLE_JOIN

    def test_somevaluesfrom_binds_two_schema_atoms(self):
        g = Graph()
        g.add_spo(u("R"), OWL.someValuesFrom, u("D"))
        g.add_spo(u("R"), OWL.onProperty, u("p"))
        crs = compile_ontology(g)
        rdfp15 = [r for r in crs.rules if r.name.startswith("rdfp15")]
        assert len(rdfp15) == 1
        assert classify_rule(rdfp15[0]) is JoinClass.SINGLE_JOIN

    def test_transitive_closure_of_hierarchy_compiled_directly(self):
        g = Graph()
        g.add_spo(u("A"), RDFS.subClassOf, u("B"))
        g.add_spo(u("B"), RDFS.subClassOf, u("C"))
        crs = compile_ontology(g)
        # A->B, B->C, and the saturated A->C: three rdfs9 rules.
        assert crs.per_template["rdfs9"] == 3

    def test_degenerate_reflexive_rule_skipped(self):
        g = Graph([Triple(u("A"), RDFS.subClassOf, u("A"))])
        crs = compile_ontology(g)
        assert crs.per_template["rdfs9"] == 0

    def test_compiled_set_is_data_partitionable(self):
        g = Graph()
        g.add_spo(u("p"), RDF.type, OWL.TransitiveProperty)
        g.add_spo(u("p"), RDFS.domain, u("C"))
        g.add_spo(u("q"), OWL.inverseOf, u("p"))
        crs = compile_ontology(g)
        crs.check_single_join()  # must not raise

    def test_no_duplicate_rules(self):
        g = Graph()
        g.add_spo(u("A"), RDFS.subClassOf, u("B"))
        crs = compile_ontology(g)
        seen = {(r.body, r.head) for r in crs.rules}
        assert len(seen) == len(crs.rules)

    def test_empty_schema_compiles_no_schema_bound_rules(self):
        crs = compile_ontology(Graph())
        # No TBox, no sameAs producers: nothing to run.
        assert len(crs.rules) == 0


class TestSameAsGating:
    def test_auto_excludes_without_producers(self):
        g = Graph([Triple(u("A"), RDFS.subClassOf, u("B"))])
        crs = compile_ontology(g)
        names = {r.name.split(".")[0] for r in crs.rules}
        assert "rdfp6" not in names and "rdfp11a" not in names

    def test_auto_includes_with_functional_property(self):
        g = Graph([Triple(u("p"), RDF.type, OWL.FunctionalProperty)])
        assert schema_can_produce_sameas(g)
        crs = compile_ontology(g)
        names = {r.name.split(".")[0] for r in crs.rules}
        assert {"rdfp6", "rdfp7", "rdfp11a", "rdfp11b"} <= names

    def test_forced_inclusion(self):
        crs = compile_ontology(Graph(), include_sameas_propagation=True)
        names = {r.name.split(".")[0] for r in crs.rules}
        assert "rdfp11a" in names

    def test_faithful_rdfp11_variant(self):
        crs = compile_ontology(
            Graph(), include_sameas_propagation=True, split_sameas=False
        )
        names = {r.name.split(".")[0] for r in crs.rules}
        assert "rdfp11" in names
        with pytest.raises(ValueError):
            crs.check_single_join()
