"""Unit tests for the OWL-Horst rule templates."""

from repro.datalog.analysis import JoinClass, classify_rule
from repro.owl.rules_horst import (
    HORST_TEMPLATES,
    RDFP11,
    RDFP11_SPLIT,
    SCHEMA_RULES,
    horst_raw_rules,
)


class TestTemplateShapes:
    def test_all_templates_have_rules(self):
        assert len(HORST_TEMPLATES) >= 14

    def test_schema_positions_in_range(self):
        for t in HORST_TEMPLATES:
            for pos in t.schema_positions:
                assert 0 <= pos < t.rule.arity

    def test_instance_body_excludes_schema_atoms(self):
        for t in HORST_TEMPLATES:
            assert len(t.instance_body()) == t.rule.arity - len(t.schema_positions)

    def test_residual_arity_at_most_two(self):
        # After schema binding, every instance rule is zero- or single-join
        # (the paper's Section II claim).
        for t in HORST_TEMPLATES:
            assert len(t.instance_body()) in (1, 2), t.name

    def test_known_names_present(self):
        names = {t.name for t in HORST_TEMPLATES}
        for expected in ("rdfs2", "rdfs9", "rdfp4", "rdfp15", "rdfp16",
                         "rdfp6", "rdfp7"):
            assert expected in names

    def test_rdfp11_is_the_multi_join_exception(self):
        assert classify_rule(RDFP11.rule) is JoinClass.MULTI_JOIN

    def test_rdfp11_split_is_single_join(self):
        for t in RDFP11_SPLIT:
            assert classify_rule(t.rule) is JoinClass.SINGLE_JOIN


class TestSchemaRules:
    def test_hierarchy_transitivity_present(self):
        names = {r.name for r in SCHEMA_RULES}
        assert {"rdfs5", "rdfs11"} <= names

    def test_equivalence_bridges_present(self):
        names = {r.name for r in SCHEMA_RULES}
        assert {"rdfp12a", "rdfp12b", "rdfp13a", "rdfp13b"} <= names


class TestRawRules:
    def test_default_includes_faithful_rdfp11(self):
        names = {r.name for r in horst_raw_rules()}
        assert "rdfp11" in names
        assert "rdfp11a" not in names

    def test_split_variant(self):
        names = {r.name for r in horst_raw_rules(split_sameas=True)}
        assert {"rdfp11a", "rdfp11b"} <= names
        assert "rdfp11" not in names

    def test_exclusion(self):
        names = {r.name for r in horst_raw_rules(include_sameas_propagation=False)}
        assert "rdfp11" not in names and "rdfp11a" not in names

    def test_unique_names(self):
        rules = horst_raw_rules()
        assert len({r.name for r in rules}) == len(rules)
