"""Tests for the SPARQL-subset parser and the LUBM query battery."""

import pytest

from repro.datasets import LUBM
from repro.datasets.lubm_queries import LUBM_QUERIES, run_all
from repro.owl import MaterializedKB
from repro.rdf import Graph, Literal, URI, parse_sparql, run_sparql
from repro.rdf.sparql import SparqlParseError
from repro.rdf.turtle import RDF_TYPE

EX = "http://x.org/"
P = f"PREFIX ex: <{EX}>\n"


def u(name):
    return URI(EX + name)


@pytest.fixture
def graph():
    g = Graph()
    g.add_spo(u("alice"), RDF_TYPE, u("Person"))
    g.add_spo(u("bob"), RDF_TYPE, u("Person"))
    g.add_spo(u("alice"), u("knows"), u("bob"))
    g.add_spo(u("alice"), u("age"), Literal("42"))
    return g


class TestParsing:
    def test_select_projection(self):
        q = parse_sparql(P + "SELECT ?a ?b WHERE { ?a ex:knows ?b . }")
        assert [v.name for v in q.projection] == ["a", "b"]
        assert q.form == "select"

    def test_select_star(self):
        q = parse_sparql(P + "SELECT * WHERE { ?a ex:knows ?b . }")
        assert q.projection == ()

    def test_where_keyword_optional(self):
        q = parse_sparql(P + "SELECT ?a { ?a ex:knows ?b }")
        assert q.form == "select"

    def test_ask(self):
        q = parse_sparql(P + "ASK { ?a ex:knows ?b }")
        assert q.form == "ask"

    def test_a_keyword(self):
        q = parse_sparql(P + "SELECT ?x WHERE { ?x a ex:Person . }")
        assert q.bgp.patterns[0].p == RDF_TYPE

    def test_semicolon_and_comma_lists(self):
        q = parse_sparql(
            P + "SELECT ?x WHERE { ?x a ex:Person ; ex:knows ?y, ?z . }"
        )
        assert len(q.bgp.patterns) == 3

    def test_literals(self):
        q = parse_sparql(P + 'SELECT ?x WHERE { ?x ex:age 42 . ?x ex:name "n"@en . }')
        assert len(q.bgp.patterns) == 2

    @pytest.mark.parametrize(
        "text,match",
        [
            ("SELECT ?x WHERE { ?x ?p ?y . FILTER(?y > 3) }", "FILTER"),
            ("SELECT ?x WHERE { OPTIONAL { ?x ?p ?y } }", "OPTIONAL"),
            ("CONSTRUCT { ?x ?p ?y } WHERE { ?x ?p ?y }", "CONSTRUCT"),
            ("SELECT WHERE { ?x ?p ?y }", "variables"),
            ("SELECT ?x WHERE { }", "empty graph pattern"),
            ("SELECT ?x WHERE { ?x zz:p ?y }", "unknown prefix"),
            ("nonsense", "expected SELECT or ASK"),
            ("", "empty query"),
        ],
    )
    def test_unsupported_and_malformed(self, text, match):
        with pytest.raises(SparqlParseError, match=match):
            parse_sparql(text)


class TestSolutionModifiers:
    def test_distinct_flag(self):
        q = parse_sparql(P + "SELECT DISTINCT ?a WHERE { ?a ex:knows ?b }")
        assert q.distinct is True
        assert [v.name for v in q.projection] == ["a"]
        plain = parse_sparql(P + "SELECT ?a WHERE { ?a ex:knows ?b }")
        assert plain.distinct is False

    def test_distinct_star(self):
        q = parse_sparql(P + "SELECT DISTINCT * WHERE { ?a ex:knows ?b }")
        assert q.distinct is True and q.projection == ()

    def test_limit_parsed(self):
        q = parse_sparql(P + "SELECT ?x WHERE { ?x a ex:Person } LIMIT 7")
        assert q.limit == 7
        assert parse_sparql(P + "SELECT ?x { ?x a ex:Person }").limit is None

    def test_limit_truncates_sorted_rows(self, graph):
        rows = run_sparql(
            graph, P + "SELECT ?x WHERE { ?x a ex:Person } LIMIT 1")
        # deterministic: the sorted result's first row, not an arbitrary one
        assert rows == [(u("alice"),)]
        assert run_sparql(
            graph, P + "SELECT ?x WHERE { ?x a ex:Person } LIMIT 0") == []

    def test_limit_larger_than_result(self, graph):
        rows = run_sparql(
            graph, P + "SELECT ?x WHERE { ?x a ex:Person } LIMIT 99")
        assert rows == [(u("alice"),), (u("bob"),)]

    def test_distinct_matches_plain_select(self, graph):
        # the engine already returns distinct rows, so DISTINCT is a no-op
        text = "SELECT %s ?x WHERE { ?x a ex:Person ; ex:knows ?y }"
        assert run_sparql(graph, P + text % "DISTINCT") == \
            run_sparql(graph, P + text % "")

    @pytest.mark.parametrize(
        "text,match",
        [
            ("ASK { ?x ?p ?y } LIMIT 2", "unexpected 'LIMIT'"),
            ("SELECT ?x { ?x ?p ?y } LIMIT -1", "non-negative integer"),
            ("SELECT ?x { ?x ?p ?y } LIMIT 1.5", "non-negative integer"),
            ("SELECT ?x { ?x ?p ?y } LIMIT", "non-negative integer"),
            ("SELECT ?x { ?x ?p ?y } LIMIT ?n", "non-negative integer"),
            ("SELECT REDUCED ?x { ?x ?p ?y }", "REDUCED"),
            ("SELECT ?x { ?x ?p ?y } OFFSET 2", "OFFSET"),
        ],
    )
    def test_modifier_errors_stay_pointed(self, text, match):
        with pytest.raises(SparqlParseError, match=match):
            parse_sparql(text)


class TestExecution:
    def test_select(self, graph):
        rows = run_sparql(graph, P + "SELECT ?x WHERE { ?x a ex:Person . }")
        assert rows == [(u("alice"),), (u("bob"),)]

    def test_ask_true_false(self, graph):
        assert run_sparql(graph, P + "ASK { ex:alice ex:knows ex:bob }") is True
        assert run_sparql(graph, P + "ASK { ex:bob ex:knows ex:alice }") is False

    def test_join(self, graph):
        rows = run_sparql(
            graph,
            P + "SELECT ?y WHERE { ?x a ex:Person . ?x ex:knows ?y . }",
        )
        assert rows == [(u("bob"),)]

    def test_select_star_sorted_by_var_name(self, graph):
        rows = run_sparql(graph, P + "SELECT * WHERE { ?b ex:knows ?a . }")
        # SELECT * projects variables sorted by name: (?a, ?b).
        assert rows == [(u("bob"), u("alice"))]

    def test_literal_constant(self, graph):
        rows = run_sparql(graph, P + 'SELECT ?x WHERE { ?x ex:age "42" . }')
        assert rows == [(u("alice"),)]


class TestLUBMQueries:
    @pytest.fixture(scope="class")
    def kb(self):
        # cross_university_fraction=0 keeps every grad's undergrad degree
        # at the home university, guaranteeing Q2's triangle has answers
        # at this tiny scale.
        ds = LUBM(2, seed=0, departments_per_university=2,
                  faculty_per_department=2, students_per_faculty=3,
                  cross_university_fraction=0.0)
        kb = MaterializedKB(ds.ontology)
        kb.add(iter(ds.data))
        return ds, kb

    def test_all_queries_parse(self):
        for q in LUBM_QUERIES:
            q.parse()

    def test_fourteen_queries(self):
        assert len(LUBM_QUERIES) == 14
        assert len({q.name for q in LUBM_QUERIES}) == 14

    def test_inference_queries_empty_on_raw_graph(self, kb):
        ds, _ = kb
        for q in LUBM_QUERIES:
            if q.requires_inference:
                assert q.rows(ds.data) == [], q.name

    def test_all_queries_nonempty_on_materialized(self, kb):
        _, materialized = kb
        counts = run_all(materialized.graph)
        for q in LUBM_QUERIES:
            assert counts[q.name] > 0, q.name

    def test_materialization_preserves_raw_answers(self, kb):
        ds, materialized = kb
        for q in LUBM_QUERIES:
            if not q.requires_inference:
                assert set(q.rows(ds.data)) <= set(q.rows(materialized.graph))

    def test_q12_chair_is_purely_inferred(self, kb):
        ds, materialized = kb
        q12 = next(q for q in LUBM_QUERIES if q.name == "Q12")
        assert q12.rows(ds.data) == []
        # one chair per department of University0
        assert len(q12.rows(materialized.graph)) == 2
