"""Tests for the dynamic-load-balancing extension."""

import pytest

from repro.datasets import LUBM, MDC
from repro.owl import HorstReasoner
from repro.owl.vocabulary import OWL, RDF
from repro.parallel.rebalance import RebalancingParallelReasoner
from repro.partitioning.policies import HashPartitioningPolicy
from repro.rdf import Graph, URI


def u(name):
    return URI(f"ex:{name}")


@pytest.fixture
def tbox():
    g = Graph()
    g.add_spo(u("partOf"), RDF.type, OWL.TransitiveProperty)
    return g


def skewed_chains(light=2, heavy=40):
    """One long chain (heavy closure) plus short ones: a workload where a
    balanced-by-node-count partitioning is badly work-imbalanced."""
    g = Graph()
    for i in range(heavy):
        g.add_spo(u(f"big{i}"), u("partOf"), u(f"big{i + 1}"))
    for c in range(4):
        for i in range(light):
            g.add_spo(u(f"s{c}_{i}"), u("partOf"), u(f"s{c}_{i + 1}"))
    return g


class TestCorrectness:
    def test_closure_exact_with_migrations(self, tbox):
        data = skewed_chains()
        serial = HorstReasoner(tbox).materialize(data)
        reasoner = RebalancingParallelReasoner(
            tbox, k=3, policy=HashPartitioningPolicy(),
            imbalance_threshold=1.1, migration_fraction=0.5,
        )
        result = reasoner.materialize(data)
        instance = Graph(
            t for t in result.graph if t not in reasoner.compiled.schema
        )
        assert instance == serial.graph

    def test_closure_exact_without_migrations(self, tbox):
        """threshold=inf disables migration; must still be exact."""
        data = skewed_chains()
        serial = HorstReasoner(tbox).materialize(data)
        reasoner = RebalancingParallelReasoner(
            tbox, k=3, imbalance_threshold=1e9
        )
        result = reasoner.materialize(data)
        instance = Graph(
            t for t in result.graph if t not in reasoner.compiled.schema
        )
        assert instance == serial.graph
        assert result.migrations == []

    @pytest.mark.parametrize("dataset", ["lubm", "mdc"])
    def test_closure_exact_on_benchmarks(self, dataset):
        ds = (
            LUBM(2, seed=2, departments_per_university=1,
                 faculty_per_department=2, students_per_faculty=2)
            if dataset == "lubm"
            else MDC(2, seed=2, wells_per_field=2, hierarchy_depth=4)
        )
        serial = HorstReasoner(ds.ontology).materialize(ds.data)
        reasoner = RebalancingParallelReasoner(
            ds.ontology, k=3, policy=HashPartitioningPolicy(),
            imbalance_threshold=1.2,
        )
        result = reasoner.materialize(ds.data)
        instance = Graph(
            t for t in result.graph if t not in reasoner.compiled.schema
        )
        assert instance == serial.graph


class TestMigrationBehaviour:
    def test_migrations_happen_under_skew(self, tbox):
        data = skewed_chains()
        reasoner = RebalancingParallelReasoner(
            tbox, k=3, policy=HashPartitioningPolicy(),
            imbalance_threshold=1.1, migration_fraction=0.5,
        )
        result = reasoner.materialize(data)
        assert result.migrations, "the skewed chain must trigger migration"
        m = result.migrations[0]
        assert m.donor != m.receiver
        assert m.resources
        assert m.tuples_shipped > 0

    def test_migration_log_rounds_monotone(self, tbox):
        data = skewed_chains()
        reasoner = RebalancingParallelReasoner(
            tbox, k=3, policy=HashPartitioningPolicy(),
            imbalance_threshold=1.05, migration_fraction=0.3,
        )
        result = reasoner.materialize(data)
        rounds = [m.round_no for m in result.migrations]
        assert rounds == sorted(rounds)

    def test_parameter_validation(self, tbox):
        with pytest.raises(ValueError):
            RebalancingParallelReasoner(tbox, k=0)
        with pytest.raises(ValueError):
            RebalancingParallelReasoner(tbox, k=2, imbalance_threshold=0.5)
        with pytest.raises(ValueError):
            RebalancingParallelReasoner(tbox, k=2, migration_fraction=0.0)
