"""Tests for the hybrid (data x rules grid) partitioning extension."""

import pytest

from repro.datasets import LUBM, MDC
from repro.owl import HorstReasoner
from repro.owl.vocabulary import OWL, RDF
from repro.parallel.hybrid import HybridParallelReasoner, HybridRouter
from repro.rdf import Graph, URI


def u(name):
    return URI(f"ex:{name}")


@pytest.fixture
def tbox():
    from repro.owl.vocabulary import RDFS

    g = Graph()
    g.add_spo(u("partOf"), RDF.type, OWL.TransitiveProperty)
    g.add_spo(u("near"), RDF.type, OWL.SymmetricProperty)
    g.add_spo(u("partOf"), RDFS.domain, u("Component"))
    g.add_spo(u("partOf"), RDFS.range, u("Assembly"))
    g.add_spo(u("Component"), RDFS.subClassOf, u("Thing"))
    g.add_spo(u("hasPart"), OWL.inverseOf, u("partOf"))
    return g


@pytest.fixture
def data():
    g = Graph()
    for i in range(8):
        g.add_spo(u(f"n{i}"), u("partOf"), u(f"n{i + 1}"))
    g.add_spo(u("n0"), u("near"), u("n7"))
    return g


class TestHybridCorrectness:
    @pytest.mark.parametrize("k_data,k_rules", [(2, 2), (3, 2), (2, 3), (1, 2), (2, 1)])
    def test_matches_serial(self, tbox, data, k_data, k_rules):
        serial = HorstReasoner(tbox).materialize(data)
        hybrid = HybridParallelReasoner(tbox, k_data=k_data, k_rules=k_rules)
        result = hybrid.materialize(data)
        instance = Graph(
            t for t in result.graph if t not in hybrid.compiled.schema
        )
        assert instance == serial.graph

    def test_matches_serial_on_lubm(self):
        ds = LUBM(2, seed=3, departments_per_university=1,
                  faculty_per_department=2, students_per_faculty=2)
        serial = HorstReasoner(ds.ontology).materialize(ds.data)
        hybrid = HybridParallelReasoner(ds.ontology, k_data=2, k_rules=2)
        result = hybrid.materialize(ds.data)
        instance = Graph(
            t for t in result.graph if t not in hybrid.compiled.schema
        )
        assert instance == serial.graph

    def test_matches_serial_on_mdc(self):
        ds = MDC(2, seed=3, wells_per_field=2, hierarchy_depth=4)
        serial = HorstReasoner(ds.ontology).materialize(ds.data)
        hybrid = HybridParallelReasoner(ds.ontology, k_data=2, k_rules=3)
        result = hybrid.materialize(ds.data)
        instance = Graph(
            t for t in result.graph if t not in hybrid.compiled.schema
        )
        assert instance == serial.graph


class TestHybridStructure:
    def test_node_count_is_grid(self, tbox, data):
        hybrid = HybridParallelReasoner(tbox, k_data=3, k_rules=2)
        result = hybrid.materialize(data)
        assert result.stats.k == 6
        assert len(result.node_outputs) == 6

    def test_rows_share_data_columns_share_rules(self, tbox, data):
        hybrid = HybridParallelReasoner(tbox, k_data=2, k_rules=2)
        result = hybrid.materialize(data)
        dp = result.data_partitioning
        rp = result.rule_partitioning
        assert dp is not None and dp.k == 2
        assert rp is not None and rp.k == 2

    def test_memory_advantage_over_rule_partitioning(self, tbox, data):
        """Each hybrid node holds at most one data partition, not the full
        data set — the hybrid scheme's point versus pure rule partitioning."""
        hybrid = HybridParallelReasoner(tbox, k_data=2, k_rules=2)
        result = hybrid.materialize(data)
        dp = result.data_partitioning
        for row in range(2):
            base = dp.partitions[row]
            assert len(base) < len(data)

    def test_invalid_grid_rejected(self, tbox):
        with pytest.raises(ValueError):
            HybridParallelReasoner(tbox, k_data=0, k_rules=2)
        with pytest.raises(ValueError):
            HybridParallelReasoner(tbox, k_data=2, k_rules=999)


class TestHybridRouter:
    def test_destinations_are_grid_products(self, tbox, data):
        hybrid = HybridParallelReasoner(tbox, k_data=2, k_rules=2)
        hybrid.materialize(data)  # builds routers internally; rebuild here
        from repro.parallel.routing import DataPartitionRouter, RulePartitionRouter
        from repro.partitioning import partition_data, partition_rules
        from repro.partitioning.policies import GraphPartitioningPolicy

        dp = partition_data(data, GraphPartitioningPolicy(seed=0), 2)
        rp = partition_rules(hybrid.compiled.rules, 2)
        router = HybridRouter(
            DataPartitionRouter(dp.owner, frozenset(dp.vocabulary)),
            RulePartitionRouter(rp.rule_sets),
            k_data=2,
            k_rules=2,
        )
        t = next(iter(data))
        dests = router.destinations(0, t)
        assert all(0 <= d < 4 for d in dests)
        assert 0 not in dests
