"""Edge-case battery across subsystems: empty inputs, degenerate sizes,
and boundary parameters."""

import numpy as np
import pytest

from repro.graphpart import CSRGraph, MultilevelPartitioner
from repro.owl import HorstReasoner, MaterializedKB
from repro.owl.compiler import compile_ontology
from repro.parallel import ParallelReasoner
from repro.partitioning import (
    GraphPartitioningPolicy,
    HashPartitioningPolicy,
    compute_data_metrics,
    partition_data,
)
from repro.rdf import BGPQuery, Graph, Triple, URI
from repro.rdf.terms import Variable


def u(name):
    return URI(f"ex:{name}")


class TestEmptyInputs:
    def test_reasoner_on_empty_data(self, family_tbox):
        result = HorstReasoner(family_tbox).materialize(Graph())
        assert len(result.graph) == 0

    def test_parallel_on_empty_data(self, family_tbox):
        pr = ParallelReasoner(family_tbox, k=3)
        result = pr.materialize(Graph())
        instance = Graph(t for t in result.graph if t not in pr.compiled.schema)
        assert len(instance) == 0
        assert result.stats.total_tuples_communicated() == 0

    def test_partition_empty_graph(self):
        result = partition_data(Graph(), GraphPartitioningPolicy(), k=4)
        assert all(len(p) == 0 for p in result.partitions)
        metrics = compute_data_metrics(result, Graph())
        assert metrics.input_replication == 1.0

    def test_kb_empty_everything(self):
        kb = MaterializedKB(Graph())
        assert kb.add([]) == 0
        assert kb.size == 0

    def test_empty_rule_set_engine(self):
        from repro.datalog import SemiNaiveEngine

        g = Graph([Triple(u("a"), u("p"), u("b"))])
        result = SemiNaiveEngine([]).run(g)
        assert result.stats.derived == 0


class TestDegenerateSizes:
    def test_k1_partition_everything_in_part0(self, family_data):
        result = partition_data(family_data, HashPartitioningPolicy(), k=1)
        assert len(result.partitions) == 1
        assert result.partitions[0] == family_data

    def test_single_triple_parallel(self, family_tbox):
        data = Graph([Triple(u("a"), u("hasChild"), u("b"))])
        pr = ParallelReasoner(family_tbox, k=4)
        serial = HorstReasoner(family_tbox).materialize(data)
        result = pr.materialize(data)
        instance = Graph(t for t in result.graph if t not in pr.compiled.schema)
        assert instance == serial.graph

    def test_k_larger_than_resources(self, family_tbox, family_data):
        pr = ParallelReasoner(family_tbox, k=50)
        serial = HorstReasoner(family_tbox).materialize(family_data)
        result = pr.materialize(family_data)
        instance = Graph(t for t in result.graph if t not in pr.compiled.schema)
        assert instance == serial.graph

    def test_partitioner_single_vertex(self):
        g = CSRGraph.from_edges(1, np.empty((0, 2), dtype=np.int64))
        report = MultilevelPartitioner(k=1).partition(g)
        assert report.assignment.tolist() == [0]

    def test_partitioner_disconnected_singletons(self):
        g = CSRGraph.from_edges(8, np.empty((0, 2), dtype=np.int64))
        report = MultilevelPartitioner(k=4, seed=1).partition(g)
        assert report.edge_cut == 0
        assert report.balance <= 1.01


class TestBoundaryParameters:
    def test_compile_instance_triples_mixed_in_schema_arg(self):
        """compile_ontology tolerates instance triples in its input (only
        schema-shaped atoms bind)."""
        mixed = Graph()
        mixed.add_spo(u("A"), URI("http://www.w3.org/2000/01/rdf-schema#subClassOf"), u("B"))
        mixed.add_spo(u("alice"), u("likes"), u("bob"))
        crs = compile_ontology(mixed)
        assert any(r.name.startswith("rdfs9") for r in crs.rules)

    def test_query_with_all_ground_pattern(self, family_data, ex):
        from repro.datalog.ast import Atom

        q = BGPQuery([Atom(ex.alice, ex.hasChild, ex.bob)])
        assert q.ask(family_data)
        rows = list(q.execute(family_data))
        assert rows == [{}]

    def test_trials_parameter_validated(self):
        with pytest.raises(ValueError):
            MultilevelPartitioner(k=2, trials=0)

    def test_graph_policy_on_pure_literal_objects(self):
        from repro.rdf import Literal

        g = Graph()
        for i in range(5):
            g.add_spo(u(f"s{i}"), u("p"), Literal(f"v{i}"))
        result = partition_data(g, GraphPartitioningPolicy(), k=2)
        union = Graph()
        for p in result.partitions:
            union.update(iter(p))
        assert union == g
