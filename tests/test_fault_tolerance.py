"""Fault-injection tests for the supervised parallel runtime.

The contract under test (DESIGN.md §8): a worker failure — killed,
frozen, or crashed process — must never hang the master.  With
``degrade="abort"`` it surfaces as a typed
:class:`~repro.parallel.supervisor.WorkerFailure` naming the dead node;
with ``degrade="recover"`` the lost node's partition is re-run from its
input triples plus the replay of the master's relay ledger, and the final
closure must be *identical* to the serial fixpoint.  Dropped, duplicated,
and delayed batches must leave the fixpoint unchanged without any
recovery at all.

Every test that waits on real processes passes explicit, short
``idle_timeout`` bounds so a regression fails fast instead of wedging the
suite (CI adds a job-level timeout and pytest-timeout on top).
"""

import json
import multiprocessing as mp
import os
import string
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog import NaiveEngine, parse_rules
from repro.owl import HorstReasoner
from repro.owl.compiler import compile_ontology
from repro.owl.vocabulary import OWL, RDF
from repro.parallel import (
    INJECTED_EXIT_CODE,
    ChannelFault,
    FailureRecord,
    FaultPlan,
    ParallelReasoner,
    SupervisionPolicy,
    WorkerFailure,
    run_async_inprocess,
    run_multiprocess_async,
    shutdown_processes,
)
from repro.parallel.faults import KILL_ENV, env_kill_plan
from repro.parallel.mp_backend import run_multiprocess
from repro.parallel.trace import async_stats_from_json, async_stats_to_json
from repro.partitioning import (
    GraphPartitioningPolicy,
    HashPartitioningPolicy,
    partition_data,
)
from repro.rdf import Graph, Triple, URI


def u(name):
    return URI(f"ex:{name}")


START_METHODS = [
    pytest.param(
        method,
        marks=pytest.mark.skipif(
            method not in mp.get_all_start_methods(),
            reason=f"start method {method!r} unavailable on this platform",
        ),
    )
    for method in ("fork", "spawn")
]


@pytest.fixture
def tbox():
    g = Graph()
    g.add_spo(u("partOf"), RDF.type, OWL.TransitiveProperty)
    g.add_spo(u("linkedTo"), RDF.type, OWL.SymmetricProperty)
    return g


@pytest.fixture
def data():
    g = Graph()
    for c in range(2):
        for i in range(6):
            g.add_spo(u(f"c{c}n{i}"), u("partOf"), u(f"c{c}n{i + 1}"))
    g.add_spo(u("c0n6"), u("partOf"), u("c1n0"))
    g.add_spo(u("c0n0"), u("linkedTo"), u("c1n3"))
    return g


@pytest.fixture
def kill_env(monkeypatch):
    """Set REPRO_FAULT_KILL for one test (and guarantee cleanup)."""

    def _set(node_id, nth_step):
        monkeypatch.setenv(KILL_ENV, f"{node_id}:{nth_step}")

    return _set


def _setup(tbox, data, k):
    crs = compile_ontology(tbox)
    serial = HorstReasoner(tbox).materialize(data).graph
    dp = partition_data(data, GraphPartitioningPolicy(seed=0), k=k)
    return crs, serial, dp


# --- in-process fault plans ---------------------------------------------------


class TestInProcessKill:
    @pytest.mark.parametrize("victim", [0, 1, 2])
    def test_recover_matches_serial(self, tbox, data, victim):
        crs, serial, dp = _setup(tbox, data, k=3)
        result = run_async_inprocess(
            dp.partitions, [crs.rules] * 3, "data",
            owner_table=dict(dp.owner.table),
            faults=FaultPlan(kill_after={victim: 1}),
            degrade="recover",
        )
        assert result.graph == serial
        assert result.stats.worker_failures == 1
        assert result.stats.retries == 1
        record = result.stats.failures[0]
        assert record.reason == "killed"
        assert victim in record.node_ids
        # The counting ledger caught the crash as an imbalance.
        assert record.forwarded[record.node_ids.index(victim)] > \
            record.consumed[record.node_ids.index(victim)]
        # After recovery the ledger balances again.
        assert result.forwarded == result.consumed

    def test_abort_raises_typed_error_naming_node(self, tbox, data):
        crs, _, dp = _setup(tbox, data, k=3)
        with pytest.raises(WorkerFailure) as err:
            run_async_inprocess(
                dp.partitions, [crs.rules] * 3, "data",
                owner_table=dict(dp.owner.table),
                faults=FaultPlan(kill_after={1: 1}),
                degrade="abort",
            )
        assert err.value.node_ids == (1,)
        assert err.value.reason == "killed"
        assert "node(s) 1" in str(err.value)

    def test_retries_exhausted_raises(self, tbox, data):
        crs, _, dp = _setup(tbox, data, k=3)
        with pytest.raises(WorkerFailure):
            run_async_inprocess(
                dp.partitions, [crs.rules] * 3, "data",
                owner_table=dict(dp.owner.table),
                faults=FaultPlan(kill_after={1: 1}),
                degrade="recover", max_retries=0,
            )

    def test_freeze_recover_matches_serial(self, tbox, data):
        crs, serial, dp = _setup(tbox, data, k=3)
        result = run_async_inprocess(
            dp.partitions, [crs.rules] * 3, "data",
            owner_table=dict(dp.owner.table),
            faults=FaultPlan(freeze_after={2: 0}),
            degrade="recover",
        )
        assert result.graph == serial
        assert result.stats.failures[0].reason == "frozen"


class TestChannelFaults:
    """Dropped/duplicated/delayed batches leave the fixpoint unchanged —
    without recovery: retransmission (drop) rides the same ledger, and
    dedup/FIFO absorb duplicates and delays."""

    def _channels(self, tbox, data, k=3):
        """All (sender, dest) channels that actually carry a batch in a
        fault-free run, so fault indexes below always hit a real batch."""
        crs, serial, dp = _setup(tbox, data, k=k)
        clean = run_async_inprocess(
            dp.partitions, [crs.rules] * k, "data",
            owner_table=dict(dp.owner.table),
        )
        return crs, serial, dp, clean

    @pytest.mark.parametrize("action", ["drop", "duplicate", "delay"])
    def test_fixpoint_unchanged(self, tbox, data, action):
        crs, serial, dp, clean = self._channels(tbox, data)
        busiest = max(range(3), key=lambda i: clean.stats.deliveries[i])
        faults = FaultPlan(channel=[
            ChannelFault(s, busiest, 0, action)
            for s in range(3) if s != busiest
        ])
        result = run_async_inprocess(
            dp.partitions, [crs.rules] * 3, "data",
            owner_table=dict(dp.owner.table), faults=faults,
        )
        assert result.graph == serial
        assert result.stats.worker_failures == 0
        if action == "drop":
            assert result.stats.retransmitted > 0
        if action == "duplicate":
            # Both wire copies were counted and consumed.
            assert result.stats.messages > clean.stats.messages

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            ChannelFault(0, 1, 0, "scramble")


# --- hypothesis differential: recovery == serial naive closure ----------------

_name = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=4)
_uris = st.builds(lambda s: URI("ex:" + s), _name)
_preds = st.builds(lambda s: URI("p:" + s), st.sampled_from(["p", "q"]))
_triples = st.builds(Triple, _uris, _preds, _uris)
_graphs = st.builds(Graph, st.lists(_triples, max_size=25))

_DIFF_RULES = parse_rules(
    "@prefix ex: <ex:>\n"
    "@prefix p: <p:>\n"
    "[chain: (?x p:p ?y) (?y p:p ?z) -> (?x p:q ?z)]\n"
    "[mint: (?x p:q ?y) -> (?x p:p ex:minted)]\n"
)


@given(_graphs, st.integers(2, 4), st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_kill_recover_equals_naive_closure(g, k, victim_seed):
    """Random graphs, shuffled delivery, one worker killed mid-run: the
    recovered closure must equal the serial naive fixpoint exactly.  The
    minting rule guarantees the dead incarnation may have shipped
    delta-dictionary entries for runtime-minted terms, exercising the
    per-epoch id-stripe isolation."""
    serial = g.copy()
    NaiveEngine(_DIFF_RULES).run(serial)

    dp = partition_data(g, HashPartitioningPolicy(), k=k)
    victim = victim_seed % k
    result = run_async_inprocess(
        dp.partitions, [_DIFF_RULES] * k, "data", owner_table={},
        delivery="shuffle", seed=victim_seed,
        faults=FaultPlan(kill_after={victim: 0}),
        degrade="recover",
    )
    assert result.graph == serial
    # Either the victim never received a message (no stall, no failure)
    # or exactly one failure was recovered.
    assert result.stats.worker_failures in (0, 1)
    assert result.forwarded == result.consumed


# --- multiprocess: env-triggered crashes --------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("start_method", START_METHODS)
def test_mp_kill_recover_matches_serial(tbox, data, start_method, kill_env):
    crs, serial, dp = _setup(tbox, data, k=3)
    kill_env(1, 1)  # node 1 hard-exits on its first step
    result = run_multiprocess_async(
        dp.partitions, [crs.rules] * 3, "data",
        owner_table=dict(dp.owner.table),
        start_method=start_method, idle_timeout=60.0,
        degrade="recover", with_stats=True,
    )
    assert result.graph == serial
    assert result.stats.worker_failures == 1
    assert result.stats.retries == 1
    record = result.stats.failures[0]
    assert 1 in record.node_ids
    assert record.exitcode == INJECTED_EXIT_CODE
    assert result.stats.retransmitted >= 0


@pytest.mark.slow
def test_mp_abort_raises_typed_error_within_deadline(tbox, data, kill_env):
    crs, _, dp = _setup(tbox, data, k=3)
    kill_env(2, 1)
    start = time.monotonic()
    with pytest.raises(WorkerFailure) as err:
        run_multiprocess_async(
            dp.partitions, [crs.rules] * 3, "data",
            owner_table=dict(dp.owner.table),
            idle_timeout=30.0, degrade="abort",
        )
    elapsed = time.monotonic() - start
    assert 2 in err.value.node_ids
    assert err.value.reason == "exit"
    assert err.value.exitcode == INJECTED_EXIT_CODE
    assert "node(s) 2" in str(err.value)
    # Detection is liveness-driven (poll on every blocking wait), far
    # inside the idle deadline.
    assert elapsed < 30.0


@pytest.mark.slow
def test_mp_recovery_stats_exported_for_ci(tbox, data, kill_env, tmp_path):
    """Runs the recovery scenario and archives its AsyncRunStats JSON —
    CI uploads the file (FAULT_STATS_JSON) as a build artifact."""
    crs, serial, dp = _setup(tbox, data, k=3)
    kill_env(0, 2)
    result = run_multiprocess_async(
        dp.partitions, [crs.rules] * 3, "data",
        owner_table=dict(dp.owner.table),
        idle_timeout=60.0, degrade="recover", with_stats=True,
    )
    assert result.graph == serial
    document = async_stats_to_json(result.stats)
    out = os.environ.get("FAULT_STATS_JSON")
    path = out if out else tmp_path / "fault_recovery_stats.json"
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(document)
    payload = json.loads(document)
    assert payload["retries"] == 1
    assert len(payload["failures"]) == 1
    assert payload["failures"][0]["exitcode"] == INJECTED_EXIT_CODE


# --- LUBM(1): recovery at dataset scale ---------------------------------------


@pytest.mark.slow
def test_lubm_kill_recover_matches_serial():
    from repro.datasets.lubm import LUBM

    ds = LUBM(1, seed=0)
    serial = HorstReasoner(ds.ontology).materialize(ds.data).graph
    pr = ParallelReasoner(ds.ontology, k=3, degrade="recover")
    sync = pr.materialize(ds.data).graph
    result = pr.materialize_async(
        ds.data, faults=FaultPlan(kill_after={1: 3}),
    )
    assert result.graph == sync
    # The serial instance closure is contained in the recovered output
    # (the parallel graph additionally carries the schema closure).
    assert set(iter(serial)) <= set(iter(result.graph))
    assert result.stats.worker_failures == 1
    assert result.stats.retries == 1


# --- lock-step backend: diagnostic instead of hang ----------------------------


@pytest.mark.slow
@pytest.mark.parametrize("start_method", START_METHODS)
def test_lockstep_dead_worker_raises_instead_of_hanging(
    tbox, data, start_method, kill_env
):
    crs, _, dp = _setup(tbox, data, k=2)
    kill_env(1, 1)
    start = time.monotonic()
    with pytest.raises(WorkerFailure) as err:
        run_multiprocess(
            dp.partitions, [crs.rules] * 2, "data",
            owner_table=dict(dp.owner.table),
            start_method=start_method, idle_timeout=30.0,
        )
    assert 1 in err.value.node_ids
    assert err.value.exitcode == INJECTED_EXIT_CODE
    assert time.monotonic() - start < 30.0


@pytest.mark.slow
def test_lockstep_still_correct_under_supervision(tbox, data):
    crs, serial, dp = _setup(tbox, data, k=2)
    union = run_multiprocess(
        dp.partitions, [crs.rules] * 2, "data",
        owner_table=dict(dp.owner.table), idle_timeout=60.0,
    )
    assert union == serial


# --- shutdown escalation ------------------------------------------------------


def _ignore_sigterm_and_sleep():
    import signal

    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(300)


@pytest.mark.slow
def test_shutdown_escalates_to_kill():
    """A worker that ignores SIGTERM must still be torn down, via the
    bounded join -> terminate -> kill escalation."""
    ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() \
        else mp.get_context()
    proc = ctx.Process(target=_ignore_sigterm_and_sleep)
    proc.start()
    time.sleep(0.3)  # let the child install its handler
    start = time.monotonic()
    shutdown_processes([proc], grace=1.0)
    assert not proc.is_alive()
    assert time.monotonic() - start < 10.0


# --- policy & plumbing --------------------------------------------------------


class TestPolicyValidation:
    def test_bad_degrade_rejected(self):
        with pytest.raises(ValueError):
            SupervisionPolicy(degrade="retry")

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            SupervisionPolicy(max_retries=-1)

    def test_driver_rejects_bad_degrade(self, tbox):
        with pytest.raises(ValueError):
            ParallelReasoner(tbox, k=2, degrade="panic")

    def test_backend_rejects_bad_degrade(self, data):
        with pytest.raises(ValueError):
            run_async_inprocess([data], [[]], "data", owner_table={},
                                degrade="panic")

    def test_env_plan_parsing(self, monkeypatch):
        monkeypatch.delenv(KILL_ENV, raising=False)
        assert env_kill_plan() is None
        monkeypatch.setenv(KILL_ENV, "2:5")
        assert env_kill_plan() == (2, 5)
        monkeypatch.setenv(KILL_ENV, "nonsense")
        with pytest.raises(ValueError):
            env_kill_plan()


class TestFailureRecordSerialization:
    def test_async_stats_json_roundtrip_with_failures(self):
        from repro.parallel.stats import AsyncRunStats

        stats = AsyncRunStats(k=3, messages=10, tuples=40,
                              retries=2, retransmitted=7)
        stats.failures.append(
            FailureRecord((1,), "exit", INJECTED_EXIT_CODE, 0, (5,), (2,))
        )
        stats.failures.append(
            FailureRecord((0, 2), "hang", None, 1, (3, 4), (3, 1))
        )
        reloaded = async_stats_from_json(async_stats_to_json(stats))
        assert reloaded == stats
        assert reloaded.worker_failures == 2

    def test_worker_failure_record_conversion(self):
        err = WorkerFailure(
            (1,), "exit", process_index=1, exitcode=86,
            forwarded=(5,), consumed=(2,), epoch=0,
        )
        record = err.record()
        assert record.node_ids == (1,)
        assert record.exitcode == 86
        assert FailureRecord.from_dict(record.to_dict()) == record
