"""Tier-1 tests for the static-analysis subsystem (repro.analysis).

Three layers:

* fixture tests — each linter rule against a fixture file with a known,
  exact set of findings (tests/fixtures/lint/);
* self-application — the repo's own tree must come back clean, and
  deliberately re-introducing each PR-3 bug class (untimed ``Queue.get``
  in ``parallel/``, a deleted message handler, a stripped
  ``Atom.__reduce__``) must make the corresponding pass fail;
* the preflight gate — ``materialize(..., preflight="strict")`` rejects
  non-partitionable rule sets and protocol-spec drift with typed
  diagnostics.
"""

import json
import subprocess
import sys
import types
from pathlib import Path

import pytest

from repro.analysis import (
    ASYNC_PROTOCOL,
    AllowlistError,
    AnalysisReport,
    Finding,
    HandlerSpec,
    LintConfig,
    MessageSpec,
    PreflightError,
    PreflightWarning,
    ProtocolSpec,
    check_spawn_safety,
    lint_paths,
    parse_allowlist,
    run_all,
    run_preflight,
    spec_table,
    verify_protocol,
)
from repro.analysis import preflight as preflight_mod
from repro.analysis.protocol import module_source
from repro.datalog.parser import parse_rules
from repro.owl.vocabulary import RDF, RDFS
from repro.parallel import messages
from repro.parallel.driver import ParallelReasoner
from repro.rdf import Graph, Triple, URI

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"

#: Scope the path-gated rules (CX104/CX105) onto the fixture directory.
FIXTURE_CONFIG = LintConfig(
    spawn_scope=("fixtures/lint/",), seeded_scope=("fixtures/lint/",)
)

_ASYNC = "repro.parallel.async_backend"

MULTI_JOIN_RULES = """@prefix ex: <ex:>
[bad: (?a ex:p ?b) (?c ex:q ?d) (?e ex:r ?f) -> (?a ex:p ?f)]"""


def lint_fixture(name: str) -> list[Finding]:
    return lint_paths([FIXTURES / name], FIXTURE_CONFIG, root=REPO_ROOT)


def codes(findings) -> list[str]:
    return sorted(f.code for f in findings)


# -- linter fixtures (exact counts and codes) ---------------------------------


def test_fixture_bad_blocking():
    assert codes(lint_fixture("bad_blocking.py")) == ["CX101"] * 3


def test_fixture_bad_except():
    assert codes(lint_fixture("bad_except.py")) == ["CX102", "CX102", "CX103", "CX103"]


def test_fixture_bad_module_state():
    findings = lint_fixture("bad_module_state.py")
    assert codes(findings) == ["CX104"] * 3
    # Dunders (__all__) and immutable constants must not be flagged.
    assert not any("FROZEN" in f.message or "__all__" in f.message for f in findings)


def test_fixture_bad_random():
    assert codes(lint_fixture("bad_random.py")) == ["CX105"] * 4


def test_fixture_good_parallel_is_clean():
    assert lint_fixture("good_parallel.py") == []


def test_scope_gated_rules_silent_outside_scope():
    # Under the default config the fixture paths are outside
    # spawn_scope/seeded_scope, so CX104/CX105 must not fire.
    findings = lint_paths(
        [FIXTURES / "bad_module_state.py", FIXTURES / "bad_random.py"],
        root=REPO_ROOT,
    )
    assert findings == []


def test_syntax_error_is_a_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    assert codes(lint_paths([bad])) == ["CX100"]


# -- self-application and deliberate regressions ------------------------------


def test_repo_tree_is_clean():
    report = run_all()
    assert report.ok, report.format_text()
    assert report.findings == []


def test_reintroduced_untimed_queue_get_is_caught(tmp_path):
    mod = tmp_path / "repro" / "parallel" / "spool.py"
    mod.parent.mkdir(parents=True)
    mod.write_text("def drain(inbox):\n    return inbox.get()\n")
    assert codes(lint_paths([mod], root=tmp_path)) == ["CX101"]


def test_protocol_clean_against_installed_sources():
    assert verify_protocol() == []


def test_removed_finish_handler_is_caught():
    source = module_source(_ASYNC).replace(
        "isinstance(msg, Finish)", "isinstance(msg, Adopt)"
    )
    findings = verify_protocol(sources={_ASYNC: source})
    assert any(f.code == "PROTO010" and "Finish" in f.message for f in findings)


def test_removed_stale_epoch_guard_is_caught():
    source = module_source(_ASYNC).replace(
        "msg.epoch < epoch[msg.node_id]", "msg.node_id < 0", 1
    )
    findings = verify_protocol(sources={_ASYNC: source})
    assert any(f.code == "PROTO020" and "Produced" in f.message for f in findings)


def test_rogue_ledger_mutation_is_caught():
    source = module_source(_ASYNC) + "\n\ndef rogue(det):\n    det.record_ack(0, 0)\n"
    findings = verify_protocol(sources={_ASYNC: source})
    assert any(f.code == "PROTO030" and "record_ack" in f.message for f in findings)


def test_renamed_accounted_path_is_spec_drift():
    source = module_source(_ASYNC).replace("def relay(", "def relay2(").replace(
        "relay(batch)", "relay2(batch)"
    )
    findings = verify_protocol(sources={_ASYNC: source})
    assert any(f.code == "PROTO031" and "relay" in f.message for f in findings)


def test_registry_spec_drift_both_directions():
    # A spec message the registry does not know -> PROTO001.
    spec = ProtocolSpec(
        messages=ASYNC_PROTOCOL.messages + (MessageSpec("Ping", "master->worker"),),
        handlers=(),
        ledger=(),
    )
    assert "PROTO001" in codes(verify_protocol(spec))
    # A registered control message the spec does not know -> PROTO002.
    spec = ProtocolSpec(
        messages=tuple(m for m in ASYNC_PROTOCOL.messages if m.name != "Heartbeat"),
        handlers=(),
        ledger=(),
    )
    assert "PROTO002" in codes(verify_protocol(spec))


def test_unstamped_message_marked_epoch_stamped_is_caught():
    spec = ProtocolSpec(
        messages=(MessageSpec("Deliver", "master->worker", epoch_stamped=True),),
        handlers=(),
        ledger=(),
    )
    findings = [f for f in verify_protocol(spec) if f.code == "PROTO003"]
    assert len(findings) == 1
    assert "node_id" in findings[0].message and "epoch" in findings[0].message


def test_missing_handler_function_is_caught():
    spec = ProtocolSpec(
        messages=ASYNC_PROTOCOL.messages,
        handlers=(
            HandlerSpec(module=_ASYNC, function="no_such_loop", role="worker"),
        ),
        ledger=(),
    )
    assert "PROTO031" in codes(verify_protocol(spec))


def test_deleted_atom_reduce_fails_spawn_safety(monkeypatch):
    from repro.datalog.ast import Atom

    monkeypatch.delattr(Atom, "__reduce__")
    findings = check_spawn_safety()
    assert any(f.code == "CX106" and "Atom" in f.message for f in findings)


def test_spawn_safety_clean_on_real_wire_classes():
    assert check_spawn_safety() == []


def test_registry_covers_every_control_message():
    names = {cls.__name__ for cls in messages.CONTROL_MESSAGES}
    assert names == ASYNC_PROTOCOL.message_names()


def test_spec_table_lists_every_message():
    table = spec_table()
    for name in ASYNC_PROTOCOL.message_names():
        assert name in table


# -- allowlist ----------------------------------------------------------------


def test_allowlist_requires_justification():
    with pytest.raises(AllowlistError, match="justification"):
        parse_allowlist("CX101 src/x.py\n")


def test_allowlist_rejects_malformed_head():
    with pytest.raises(AllowlistError, match="expected"):
        parse_allowlist("CX101 -- why\n")


def test_allowlist_suppresses_and_audits():
    entries = parse_allowlist("# header\nCX102  */bad_except.py  -- fixture\n")
    report = AnalysisReport()
    report.extend(lint_fixture("bad_except.py"), entries)
    assert codes(report.findings) == ["CX103", "CX103"]
    assert [f.code for f, _e in report.suppressed] == ["CX102", "CX102"]
    # Suppressions stay visible in the artifact.
    assert report.to_dict()["suppressed"][0]["justification"] == "fixture"


# -- the preflight gate -------------------------------------------------------


def test_preflight_clean_repo_passes():
    report = run_preflight()
    assert report.ok and set(report.passes) == {"protocol", "lint", "dataflow"}


def test_preflight_strict_rejects_multi_join_rules():
    rules = parse_rules(MULTI_JOIN_RULES)
    with pytest.raises(PreflightError) as exc_info:
        run_preflight(rules=rules, mode="strict")
    err = exc_info.value
    assert err.codes == ("RULES201",)
    assert err.report.findings[0].pass_name == "rules"
    # The diagnostic names the offending atoms, not just the rule.
    assert "ex:q" in str(err) and "multi-join" in str(err)


def test_preflight_rule_approach_tolerates_multi_join():
    rules = parse_rules(MULTI_JOIN_RULES)
    assert run_preflight(rules=rules, approach="rule").ok


def test_preflight_warn_mode_warns_instead_of_raising():
    rules = parse_rules(MULTI_JOIN_RULES)
    with pytest.warns(PreflightWarning, match="RULES201"):
        report = run_preflight(rules=rules, mode="warn")
    assert not report.ok


def test_preflight_off_and_bad_mode():
    rules = parse_rules(MULTI_JOIN_RULES)
    assert run_preflight(rules=rules, mode="off").ok
    with pytest.raises(ValueError, match="mode"):
        run_preflight(mode="loud")


def test_preflight_catches_protocol_drift(monkeypatch):
    source = module_source(_ASYNC).replace(
        "isinstance(msg, Finish)", "isinstance(msg, Adopt)"
    )
    monkeypatch.setattr(preflight_mod, "_SOURCES_OVERRIDE", {_ASYNC: source})
    with pytest.raises(PreflightError) as exc_info:
        run_preflight()
    assert "PROTO010" in exc_info.value.codes


def _tiny_kb():
    tbox = Graph([Triple(URI("ex:Student"), RDFS.subClassOf, URI("ex:Person"))])
    data = Graph([Triple(URI("ex:alice"), RDF.type, URI("ex:Student"))])
    return tbox, data


def test_materialize_strict_preflight_passes_on_clean_setup():
    tbox, data = _tiny_kb()
    pr = ParallelReasoner(tbox, k=2)
    result = pr.materialize(data, preflight="strict")
    assert Triple(URI("ex:alice"), RDF.type, URI("ex:Person")) in result.graph


def test_materialize_strict_rejects_swapped_rule_set():
    # The constructor's gate saw a clean rule set; preflight re-checks the
    # *current* one, so post-construction drift is caught at run time.
    tbox, data = _tiny_kb()
    pr = ParallelReasoner(tbox, k=2)
    pr.compiled = types.SimpleNamespace(rules=tuple(parse_rules(MULTI_JOIN_RULES)))
    with pytest.raises(PreflightError) as exc_info:
        pr.materialize(data, preflight="strict")
    assert "RULES201" in exc_info.value.codes


def test_materialize_async_strict_rejects_protocol_drift(monkeypatch):
    tbox, data = _tiny_kb()
    pr = ParallelReasoner(tbox, k=2)
    source = module_source(_ASYNC).replace(
        "msg.epoch < epoch[msg.node_id]", "msg.node_id < 0", 1
    )
    monkeypatch.setattr(preflight_mod, "_SOURCES_OVERRIDE", {_ASYNC: source})
    with pytest.raises(PreflightError) as exc_info:
        pr.materialize_async(data, preflight="strict")
    assert "PROTO020" in exc_info.value.codes


# -- the CLI ------------------------------------------------------------------


def _run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        timeout=120,
    )


def test_cli_clean_tree_exits_zero():
    proc = _run_cli("--format=json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["ok"] is True
    assert payload["passes"] == ["protocol", "lint", "dataflow"]


def test_cli_findings_exit_nonzero_and_report_file(tmp_path):
    out = tmp_path / "report.json"
    proc = _run_cli(
        "tests/fixtures/lint/bad_except.py",
        "--format=json",
        f"--output={out}",
        "--root",
        str(REPO_ROOT),
    )
    assert proc.returncode == 1
    payload = json.loads(out.read_text())
    assert payload["ok"] is False
    assert payload["counts"]["CX102"] == 2


def test_cli_spec_prints_protocol_table():
    proc = _run_cli("--spec")
    assert proc.returncode == 0
    assert "| Deliver | master->worker |" in proc.stdout
