"""The runtime sanitizer layer (repro.analysis.sanitize).

Covers the three surfaces the issue names:

* corrupted store state raises a *typed* :class:`SanitizerError` naming
  the store and the violated invariant;
* the cluster-level checks (stripe disjointness, Safra ledger
  conservation) pass on healthy runs and fire on injected violations;
* the opt-in plumbing — ``REPRO_SANITIZE=1`` or ``sanitize=True`` — swaps
  sanitized stores into the engine/worker paths without changing results.
"""

import numpy as np
import pytest

from repro.analysis.sanitize import (
    SanitizedIdGraph,
    SanitizedRunStore,
    SanitizerError,
    check_ledger,
    check_stripe_disjointness,
    make_store,
    sanitize_enabled,
)
from repro.parallel.termination import CountingTermination
from repro.rdf.dictionary import PartitionDictionary, TermDictionary
from repro.rdf.graph import Graph
from repro.rdf.idstore import IdGraph
from repro.rdf.terms import URI
from repro.rdf.triple import Triple


def _cols(rows):
    a = np.asarray(rows, dtype=np.int64).reshape(-1, 3)
    return a[:, 0].copy(), a[:, 1].copy(), a[:, 2].copy()


ROWS = [(i, 7, i * 2 + 1) for i in range(50)]


# -- SanitizedIdGraph ---------------------------------------------------------


def test_sanitized_idgraph_clean_path_matches_plain():
    plain, san = IdGraph(), SanitizedIdGraph(label="test", sample_rate=1.0)
    s, p, o = _cols(ROWS)
    plain.add_rows(s, p, o)
    san.add_rows(s, p, o)
    assert len(san) == len(plain)
    pk, _ = plain.sorted_view((0, 1, 2))
    sk, _ = san.sorted_view((0, 1, 2))
    assert np.array_equal(pk, sk)
    san.delete_rows(*_cols(ROWS[:10]))
    assert len(san) == 40
    san.verify()


def test_sanitized_idgraph_catches_corrupted_sorted_view():
    g = SanitizedIdGraph(label="mirror", sample_rate=1.0)
    g.add_rows(*_cols(ROWS))
    g.sorted_view((0, 1, 2))  # populate the cache
    keys, perm, covered = g._views[(0, 1, 2)]
    g._views[(0, 1, 2)] = (keys[::-1].copy(), perm, covered)
    with pytest.raises(SanitizerError) as exc_info:
        g.verify()
    err = exc_info.value
    assert err.store == "mirror"
    assert err.invariant == "sorted-view-monotonic"
    assert "mirror" in str(err) and "sorted-view-monotonic" in str(err)


def test_sanitized_idgraph_catches_corrupted_permutation():
    g = SanitizedIdGraph(label="mirror", sample_rate=1.0)
    g.add_rows(*_cols(ROWS))
    g.sorted_view((0, 1, 2))
    keys, perm, covered = g._views[(0, 1, 2)]
    bad = perm.copy()
    bad[0] = bad[1]  # duplicate entry: no longer a bijection
    g._views[(0, 1, 2)] = (keys, bad, covered)
    with pytest.raises(SanitizerError) as exc_info:
        g.verify()
    assert exc_info.value.invariant == "sorted-view-permutation"


def test_sanitized_idgraph_catches_coverage_overrun():
    g = SanitizedIdGraph(label="mirror", sample_rate=1.0)
    g.add_rows(*_cols(ROWS))
    g.sorted_view((0, 1, 2))
    keys, perm, covered = g._views[(0, 1, 2)]
    g._views[(0, 1, 2)] = (keys, perm, covered + 5)
    with pytest.raises(SanitizerError) as exc_info:
        g.verify()
    assert exc_info.value.invariant in (
        "sorted-view-permutation", "sorted-view-coverage"
    )


# -- SanitizedRunStore --------------------------------------------------------


def test_sanitized_runstore_clean_lifecycle():
    store = SanitizedRunStore(tail_rows=16, label="runs", sample_rate=1.0)
    s, p, o = _cols(ROWS)
    store.add_rows(s, p, o)  # spans several seals at tail_rows=16
    assert len(store) == len(ROWS)
    assert bool(store.contains_rows(*_cols(ROWS[:5])).all())
    # Delete sealed rows (tombstones), then resurrect them.
    store.delete_rows(*_cols(ROWS[:8]))
    assert len(store) == len(ROWS) - 8
    store.add_rows(*_cols(ROWS[:8]))
    assert len(store) == len(ROWS)
    store.verify()


def test_sanitized_runstore_catches_sample_drift():
    store = SanitizedRunStore(tail_rows=16, label="runs", sample_rate=1.0)
    store.add_rows(*_cols(ROWS))
    assert store._runs, "test needs at least one sealed run"
    idx = store._runs[0].canonical
    idx.samples[0] = (999999, 0, 0)
    with pytest.raises(SanitizerError) as exc_info:
        store.verify()
    err = exc_info.value
    assert err.store == "runs"
    assert err.invariant == "run-sample-drift"


def test_sanitized_runstore_catches_rogue_tombstone():
    store = SanitizedRunStore(tail_rows=16, label="runs", sample_rate=1.0)
    store.add_rows(*_cols(ROWS))
    # A tombstone for a key that was never sealed is an orphan.
    ghost = np.asarray([123456], dtype=np.int64)
    store._tombs.add_rows(ghost, ghost, ghost)
    with pytest.raises(SanitizerError) as exc_info:
        store.verify()
    assert exc_info.value.invariant == "tombstone-orphan"


# -- cluster checks: stripes and the ledger -----------------------------------


def _base_dictionary():
    base = TermDictionary()
    base.encode(URI("ex:a"))
    base.encode(URI("ex:b"))
    return base


def test_stripe_disjointness_passes_for_distinct_stripes():
    base = _base_dictionary()
    dicts = [PartitionDictionary(base, i, 2) for i in range(2)]
    dicts[0].encode(URI("ex:minted0"))
    dicts[1].encode(URI("ex:minted1"))
    check_stripe_disjointness(dicts)


def test_stripe_disjointness_catches_shared_stripe():
    base = _base_dictionary()
    dicts = [PartitionDictionary(base, 0, 2), PartitionDictionary(base, 0, 2)]
    dicts[0].encode(URI("ex:minted0"))
    dicts[1].encode(URI("ex:minted1"))
    with pytest.raises(SanitizerError) as exc_info:
        check_stripe_disjointness(dicts)
    assert exc_info.value.invariant == "stripe-disjoint"


def test_stripe_disjointness_catches_bad_config():
    base = _base_dictionary()
    d = PartitionDictionary(base, 1, 2)
    d.node_id = 5  # outside [0, k)
    with pytest.raises(SanitizerError) as exc_info:
        check_stripe_disjointness([d])
    assert exc_info.value.invariant == "stripe-config"


def test_ledger_conservation_passes_at_quiescence():
    det = CountingTermination(2)
    det.mark_bootstrapped(0)
    det.mark_bootstrapped(1)
    det.record_forward(1)
    det.record_ack(1, consumed=1)
    check_ledger(det)


def test_ledger_conservation_catches_in_flight_messages():
    det = CountingTermination(2)
    det.mark_bootstrapped(0)
    det.mark_bootstrapped(1)
    det.record_forward(0)  # forwarded, never acknowledged
    with pytest.raises(SanitizerError) as exc_info:
        check_ledger(det)
    assert exc_info.value.invariant == "ledger-conservation"


def test_ledger_catches_overcounted_consumption():
    det = CountingTermination(2)
    det.mark_bootstrapped(0)
    det.mark_bootstrapped(1)
    det.record_delivery(0)  # consumed with nothing forwarded
    with pytest.raises(SanitizerError) as exc_info:
        check_ledger(det)
    assert exc_info.value.invariant == "ledger-negative"


# -- opt-in plumbing ----------------------------------------------------------


def test_sanitize_enabled_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert sanitize_enabled(None) is False
    assert sanitize_enabled(True) is True
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert sanitize_enabled(None) is True
    assert sanitize_enabled(False) is False  # explicit beats the env
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert sanitize_enabled(None) is False


def test_make_store_picks_store_kind():
    assert isinstance(make_store("run", label="t"), SanitizedRunStore)
    dense = make_store("dense", capacity=8, label="t")
    assert isinstance(dense, SanitizedIdGraph)
    assert not isinstance(dense, SanitizedRunStore)


def test_engine_env_gating_swaps_store(monkeypatch):
    from repro.datalog.engine import SemiNaiveEngine

    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    eng = SemiNaiveEngine([], engine="columnar")
    assert not isinstance(eng._make_store(0), SanitizedIdGraph)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert isinstance(eng._make_store(0), SanitizedIdGraph)
    # Explicit opt-out wins over the env.
    eng_off = SemiNaiveEngine([], engine="columnar", sanitize=False)
    assert not isinstance(eng_off._make_store(0), SanitizedIdGraph)


def _chain_inputs():
    from repro.owl.vocabulary import OWL, RDF

    tbox = Graph()
    tbox.add_spo(URI("ex:partOf"), RDF.type, OWL.TransitiveProperty)
    data = Graph()
    for i in range(20):
        data.add(Triple(URI(f"ex:n{i}"), URI("ex:partOf"), URI(f"ex:n{i+1}")))
    return tbox, data


def test_async_run_sanitized_matches_unsanitized():
    from repro.parallel.driver import ParallelReasoner

    tbox, data = _chain_inputs()
    plain = ParallelReasoner(tbox, k=2, engine="columnar", encode_wire=True)
    checked = ParallelReasoner(tbox, k=2, engine="columnar",
                               encode_wire=True, sanitize=True)
    assert set(plain.materialize_async(data).graph) == set(
        checked.materialize_async(data).graph
    )


def test_apply_async_sanitized_matches_unsanitized():
    from repro.parallel.driver import ParallelReasoner

    tbox, data = _chain_inputs()
    adds = [Triple(URI("ex:x"), URI("ex:partOf"), URI("ex:n0"))]
    removes = [Triple(URI("ex:n0"), URI("ex:partOf"), URI("ex:n1"))]
    plain = ParallelReasoner(tbox, k=2)
    checked = ParallelReasoner(tbox, k=2, sanitize=True)
    assert set(plain.apply_async(data, adds=adds, removes=removes).graph) == (
        set(checked.apply_async(data, adds=adds, removes=removes).graph)
    )


def test_materialized_kb_accepts_sanitize_flag():
    from repro.owl.kb import MaterializedKB
    from repro.owl.vocabulary import OWL, RDF

    tbox = Graph()
    tbox.add_spo(URI("ex:partOf"), RDF.type, OWL.TransitiveProperty)
    kb = MaterializedKB(tbox, engine="columnar", sanitize=True)
    kb.add([Triple(URI("ex:a"), URI("ex:partOf"), URI("ex:b")),
            Triple(URI("ex:b"), URI("ex:partOf"), URI("ex:c"))])
    assert Triple(URI("ex:a"), URI("ex:partOf"), URI("ex:c")) in kb
