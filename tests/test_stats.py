"""Unit tests for RunStats folding helpers."""

from repro.parallel.stats import NodeRoundStats, RunStats


def entry(node_id, round_no=0, **kw):
    defaults = dict(
        reasoning_time=1.0,
        work=10,
        derived=2,
        received_tuples=1,
        sent_tuples=3,
        sent_bytes=100,
        received_bytes=50,
        sent_messages=1,
    )
    defaults.update(kw)
    return NodeRoundStats(node_id=node_id, round_no=round_no, **defaults)


def two_round_stats():
    stats = RunStats(k=2)
    stats.rounds.append([entry(0, 0, reasoning_time=1.0, work=10),
                         entry(1, 0, reasoning_time=2.0, work=20)])
    stats.rounds.append([entry(0, 1, reasoning_time=0.5, work=5),
                         entry(1, 1, reasoning_time=0.5, work=5)])
    return stats


def test_num_rounds():
    assert two_round_stats().num_rounds == 2


def test_reasoning_time_per_node():
    assert two_round_stats().reasoning_time_per_node() == [1.5, 2.5]


def test_work_per_node():
    assert two_round_stats().work_per_node() == [15, 25]


def test_bytes_per_node():
    assert two_round_stats().bytes_per_node() == [(200, 100), (200, 100)]


def test_messages_per_node():
    assert two_round_stats().messages_per_node() == [2, 2]


def test_total_tuples_communicated():
    assert two_round_stats().total_tuples_communicated() == 12


def test_total_derived():
    assert two_round_stats().total_derived() == 8


def test_empty_stats():
    stats = RunStats(k=3)
    assert stats.num_rounds == 0
    assert stats.reasoning_time_per_node() == [0.0, 0.0, 0.0]
    assert stats.work_per_node() == [0, 0, 0]
    assert stats.total_derived() == 0
