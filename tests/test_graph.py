"""Unit tests for the indexed triple store."""

import pytest

from repro.rdf import Graph, Literal, Triple, URI
from repro.rdf.terms import Variable


def u(name):
    return URI(f"ex:{name}")


@pytest.fixture
def small() -> Graph:
    g = Graph()
    g.add_spo(u("a"), u("p"), u("b"))
    g.add_spo(u("a"), u("p"), u("c"))
    g.add_spo(u("b"), u("q"), u("c"))
    g.add_spo(u("c"), u("p"), Literal("leaf"))
    return g


class TestMutation:
    def test_add_returns_true_once(self):
        g = Graph()
        triple = Triple(u("a"), u("p"), u("b"))
        assert g.add(triple) is True
        assert g.add(triple) is False
        assert len(g) == 1

    def test_add_requires_triple(self):
        with pytest.raises(TypeError):
            Graph().add(("s", "p", "o"))

    def test_update_counts_new_only(self, small):
        added = small.update([Triple(u("a"), u("p"), u("b")),
                              Triple(u("x"), u("p"), u("y"))])
        assert added == 1

    def test_discard_present(self, small):
        assert small.discard(Triple(u("a"), u("p"), u("b"))) is True
        assert len(small) == 3
        small.check_integrity()

    def test_discard_absent(self, small):
        assert small.discard(Triple(u("zz"), u("p"), u("b"))) is False

    def test_discard_then_match_empty(self):
        g = Graph()
        triple = Triple(u("a"), u("p"), u("b"))
        g.add(triple)
        g.discard(triple)
        assert list(g.match(u("a"), None, None)) == []
        assert len(g) == 0
        g.check_integrity()

    def test_clear(self, small):
        small.clear()
        assert len(small) == 0
        assert list(small) == []


class TestMatch:
    @pytest.mark.parametrize(
        "pattern,count",
        [
            ((None, None, None), 4),
            (("a", None, None), 2),
            ((None, "p", None), 3),
            ((None, None, "c"), 2),
            (("a", "p", None), 2),
            (("a", None, "b"), 1),
            ((None, "p", "b"), 1),
            (("a", "p", "b"), 1),
            (("zz", None, None), 0),
            ((None, "zz", None), 0),
            ((None, None, "zz"), 0),
            (("a", "q", None), 0),
            (("a", None, "zz"), 0),
            ((None, "q", "zz"), 0),
            (("a", "zz", "b"), 0),
        ],
    )
    def test_all_pattern_shapes(self, small, pattern, count):
        s, p, o = (u(x) if x else None for x in pattern)
        results = list(small.match(s, p, o))
        assert len(results) == count
        for t in results:
            assert (s is None or t.s == s)
            assert (p is None or t.p == p)
            assert (o is None or t.o == o)

    def test_variables_treated_as_wildcards(self, small):
        assert len(list(small.match(Variable("x"), u("p"), Variable("y")))) == 3

    def test_literal_object_match(self, small):
        assert len(list(small.match(None, None, Literal("leaf")))) == 1

    def test_contains(self, small):
        assert Triple(u("a"), u("p"), u("b")) in small
        assert Triple(u("a"), u("p"), u("zz")) not in small


class TestAccessors:
    def test_subjects_unique(self, small):
        assert sorted(str(s) for s in small.subjects(p=u("p"))) == [
            "ex:a", "ex:c"]

    def test_objects(self, small):
        assert set(small.objects(s=u("a"))) == {u("b"), u("c")}

    def test_predicates(self, small):
        assert set(small.predicates()) == {u("p"), u("q")}

    def test_value_unique(self, small):
        assert small.value(u("b"), u("q")) == u("c")

    def test_value_default(self, small):
        assert small.value(u("b"), u("zz"), default=u("d")) == u("d")

    def test_value_multiple_raises(self, small):
        with pytest.raises(ValueError):
            small.value(u("a"), u("p"))

    def test_count(self, small):
        assert small.count() == 4
        assert small.count(p=u("p")) == 3

    def test_resources_excludes_literals(self, small):
        resources = small.resources()
        assert u("a") in resources and u("c") in resources
        assert Literal("leaf") not in resources

    def test_degree(self, small):
        assert small.degree(u("c")) == 3  # object twice, subject once
        assert small.degree(u("zz")) == 0


class TestSetOperations:
    def test_copy_independent(self, small):
        copy = small.copy()
        copy.add_spo(u("new"), u("p"), u("x"))
        assert len(copy) == len(small) + 1

    def test_union(self, small):
        other = Graph([Triple(u("z"), u("p"), u("w"))])
        assert len(small.union(other)) == 5

    def test_difference(self, small):
        other = Graph([Triple(u("a"), u("p"), u("b"))])
        assert len(small.difference(other)) == 3

    def test_equality_order_independent(self):
        t1 = Triple(u("a"), u("p"), u("b"))
        t2 = Triple(u("c"), u("p"), u("d"))
        assert Graph([t1, t2]) == Graph([t2, t1])

    def test_inequality(self, small):
        assert small != Graph()

    def test_unhashable(self, small):
        with pytest.raises(TypeError):
            hash(small)


class TestRawAccessors:
    """The fast paths the compiled rule kernels probe through."""

    def test_spo_items_matches_iteration(self, small):
        assert set(small.spo_items()) == {(t.s, t.p, t.o) for t in small}

    def test_contains_spo(self, small):
        assert small.contains_spo(u("a"), u("p"), u("b"))
        assert not small.contains_spo(u("a"), u("p"), u("z"))
        assert not small.contains_spo(u("z"), u("p"), u("b"))

    def test_objects_set(self, small):
        assert small.objects_set(u("a"), u("p")) == {u("b"), u("c")}
        assert small.objects_set(u("a"), u("q")) is None
        assert small.objects_set(u("z"), u("p")) is None

    def test_subjects_set(self, small):
        assert small.subjects_set(u("q"), u("c")) == {u("b")}
        assert small.subjects_set(u("q"), u("z")) is None

    def test_predicates_set(self, small):
        assert small.predicates_set(u("b"), u("c")) == {u("q")}
        assert small.predicates_set(u("a"), u("z")) is None

    def test_maps(self, small):
        assert set(small.po_map(u("a"))) == {u("p")}
        assert small.po_map(u("zzz")) is None
        assert set(small.os_map(u("p"))) == {u("b"), u("c"), Literal("leaf")}
        assert small.os_map(u("zzz")) is None
        assert set(small.sp_map(u("c"))) == {u("a"), u("b")}
        assert small.sp_map(u("zzz")) is None

    def test_accessors_track_discard(self, small):
        small.discard(Triple(u("a"), u("p"), u("b")))
        assert small.objects_set(u("a"), u("p")) == {u("c")}
        assert not small.contains_spo(u("a"), u("p"), u("b"))
        small.discard(Triple(u("a"), u("p"), u("c")))
        # Emptied index levels are pruned, so the accessor sees None.
        assert small.objects_set(u("a"), u("p")) is None
        assert small.po_map(u("a")) is None


def test_integrity_checker_catches_corruption(small):
    # Reach into an index and corrupt it deliberately.
    small._spo[u("a")][u("p")].add(u("phantom"))
    with pytest.raises(AssertionError):
        small.check_integrity()
