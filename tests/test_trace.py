"""Tests for run-trace export (CSV/JSON) and JSON round-tripping."""

import json

import pytest

from repro.datasets import MDC
from repro.parallel import CostModel, ParallelReasoner, SimulatedCluster
from repro.parallel.trace import (
    CSV_COLUMNS,
    stats_from_json,
    stats_to_csv,
    stats_to_json,
)


@pytest.fixture(scope="module")
def run_stats():
    ds = MDC(2, seed=0, wells_per_field=2, hierarchy_depth=4)
    pr = ParallelReasoner(ds.ontology, k=2, approach="data")
    result = pr.materialize(ds.data)
    return pr, result


def test_csv_shape(run_stats):
    _, result = run_stats
    csv = stats_to_csv(result.stats)
    lines = csv.strip().splitlines()
    assert lines[0] == ",".join(CSV_COLUMNS)
    expected_rows = sum(len(r) for r in result.stats.rounds)
    assert len(lines) == 1 + expected_rows


def test_csv_values_parse(run_stats):
    _, result = run_stats
    csv = stats_to_csv(result.stats)
    for line in csv.strip().splitlines()[1:]:
        cells = line.split(",")
        assert len(cells) == len(CSV_COLUMNS)
        float(cells[2])  # reasoning_time
        int(cells[3])  # work


def test_json_round_trip(run_stats):
    _, result = run_stats
    document = stats_to_json(result.stats)
    restored = stats_from_json(document)
    assert restored.k == result.stats.k
    assert restored.num_rounds == result.stats.num_rounds
    assert restored.work_per_node() == result.stats.work_per_node()
    assert restored.bytes_per_node() == result.stats.bytes_per_node()
    assert restored.total_tuples_communicated() == \
        result.stats.total_tuples_communicated()


def test_json_is_valid_json(run_stats):
    _, result = run_stats
    payload = json.loads(stats_to_json(result.stats))
    assert payload["k"] == 2


def test_restored_trace_replays_through_simulated_cluster(run_stats):
    """The archived-trace workflow: reload a trace and re-model it under a
    different cost model."""
    pr, result = run_stats
    restored = stats_from_json(stats_to_json(result.stats))
    # Patch the restored stats into a result shell and reconstruct.
    result.stats.__dict__  # (original untouched)
    replayed = SimulatedCluster(pr, CostModel.mpi()).reconstruct(result)
    assert replayed.makespan > 0
    # Per-node io recomputed from the same traffic, different model:
    original = SimulatedCluster(pr, CostModel.file_ipc()).reconstruct(result)
    assert max(replayed.per_node_io) <= max(original.per_node_io)
