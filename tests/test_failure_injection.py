"""Failure-injection tests: the runtime's behaviour under duplicate
delivery, message re-ordering, routing cycles, and resource limits."""

import pytest

from repro.datalog import parse_rules
from repro.owl import HorstReasoner
from repro.owl.vocabulary import OWL, RDF
from repro.parallel import (
    BroadcastRouter,
    InMemoryComm,
    ParallelReasoner,
    PartitionWorker,
    TupleBatch,
)
from repro.rdf import Graph, Triple, URI


def u(name):
    return URI(f"ex:{name}")


TRANS = parse_rules(
    "@prefix ex: <ex:>\n[t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]"
)


@pytest.fixture
def tbox():
    g = Graph()
    g.add_spo(u("p"), RDF.type, OWL.TransitiveProperty)
    return g


@pytest.fixture
def chain():
    g = Graph()
    for i in range(6):
        g.add_spo(u(f"n{i}"), u("p"), u(f"n{i + 1}"))
    return g


class TestDuplicateDelivery:
    def test_duplicate_batches_are_idempotent(self, tbox, chain):
        """Delivering the same batch twice (file systems do that) must not
        change the closure or provoke extra sends."""
        serial = HorstReasoner(tbox).materialize(chain)
        worker = PartitionWorker(0, chain, TRANS, BroadcastRouter(2))
        worker.bootstrap()
        batch = TupleBatch.make(
            1, 0, 0, [Triple(u("n6"), u("p"), u("n7"))]
        )
        first = worker.step([batch])
        second = worker.step([batch])  # replay
        assert second.received == 0
        assert second.derived == 0
        assert second.sent_tuples == 0

    def test_self_echo_does_not_loop(self):
        """A worker receiving its own earlier output must not re-send it
        (the dedup that guarantees termination)."""
        g = Graph()
        g.add_spo(u("a"), u("p"), u("b"))
        g.add_spo(u("b"), u("p"), u("c"))
        worker = PartitionWorker(0, g, TRANS, BroadcastRouter(2))
        boot = worker.bootstrap()
        assert boot.sent_tuples == 1
        echo = TupleBatch.make(1, 0, 0, list(boot.outgoing[0].triples))
        result = worker.step([echo])
        assert result.sent_tuples == 0


class TestReordering:
    def test_out_of_order_batches_same_closure(self, tbox, chain):
        """Algorithm 3's correctness does not depend on arrival order;
        deliver round-0 batches shuffled."""
        serial = HorstReasoner(tbox).materialize(chain)
        pr = ParallelReasoner(tbox, k=3, approach="data", seed=7)
        result = pr.materialize(chain)
        instance = Graph(t for t in result.graph if t not in pr.compiled.schema)
        assert instance == serial.graph
        # (The InMemoryComm delivers FIFO; a shuffled comm is equivalent
        # because workers union all received batches before reasoning.)
        comm = InMemoryComm(2)
        comm.send(TupleBatch.make(0, 1, 0, [Triple(u("x"), u("p"), u("y"))]))
        comm.send(TupleBatch.make(0, 1, 1, [Triple(u("y"), u("p"), u("z"))]))
        batches = comm.recv_all(1)
        worker = PartitionWorker(1, Graph(), TRANS, BroadcastRouter(2))
        worker.bootstrap()
        result = worker.step(reversed(batches))
        assert Triple(u("x"), u("p"), u("z")) in worker.output_graph()


class TestResourceLimits:
    def test_max_rounds_guard_trips(self, tbox, chain):
        pr = ParallelReasoner(tbox, k=3, approach="data", max_rounds=0)
        with pytest.raises(RuntimeError, match="no termination"):
            pr.materialize(chain)

    def test_engine_iteration_guard(self):
        from repro.datalog import SemiNaiveEngine

        g = Graph()
        for i in range(12):
            g.add_spo(u(f"c{i}"), u("p"), u(f"c{i + 1}"))
        with pytest.raises(RuntimeError, match="fixpoint"):
            SemiNaiveEngine(TRANS, max_iterations=1).run(g)


class TestCorruptTransport:
    def test_file_comm_ignores_foreign_files(self, tmp_path, tbox, chain):
        """Unrelated files in the spool directory must not be consumed."""
        from repro.parallel import FileComm

        comm = FileComm(2, tmp_path)
        (tmp_path / "README.txt").write_text("not a batch")
        comm.send(TupleBatch.make(0, 1, 0, [Triple(u("a"), u("p"), u("b"))]))
        received = comm.recv_all(1)
        assert len(received) == 1
        assert (tmp_path / "README.txt").exists()

    def test_file_comm_corrupt_batch_raises_cleanly(self, tmp_path):
        from repro.parallel import FileComm
        from repro.rdf import NTriplesParseError

        comm = FileComm(2, tmp_path)
        bad = tmp_path / "r000000_s0000_d0001_00000001.nt"
        bad.write_text("THIS IS NOT NTRIPLES\n", encoding="utf-8")
        with pytest.raises(NTriplesParseError):
            comm.recv_all(1)
