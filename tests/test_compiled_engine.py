"""Compiled rule kernels, predicate dispatch, and the differential
property test proving the three execution layers compute the same fixpoint.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    NaiveEngine,
    PlanKind,
    SemiNaiveEngine,
    build_plan,
    parse_rules,
)
from repro.datalog.plan import DispatchIndex
from repro.owl.compiler import compile_ontology
from repro.owl.vocabulary import OWL, RDF, RDFS
from repro.rdf import Graph, Literal, Triple, URI

PREFIX = "@prefix ex: <ex:>\n"
TRANS = parse_rules(PREFIX + "[t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]")


def chain(n, pred="ex:p"):
    g = Graph()
    for i in range(n):
        g.add_spo(URI(f"ex:n{i}"), URI(pred), URI(f"ex:n{i + 1}"))
    return g


# -- plan selection ----------------------------------------------------------


class TestPlanSelection:
    def test_zero_join_compiles_to_scan(self):
        r = parse_rules(PREFIX + "[z: (?x ex:p ?y) -> (?y ex:q ?x)]")[0]
        assert build_plan(r).kind is PlanKind.SCAN

    def test_single_join_compiles_to_join(self):
        assert build_plan(TRANS[0]).kind is PlanKind.JOIN

    def test_cartesian_two_atom_falls_back(self):
        r = parse_rules(
            PREFIX + "[c: (?a ex:p ?b) (?c ex:q ?d) -> (?a ex:r ?d)]"
        )[0]
        assert build_plan(r).kind is PlanKind.GENERIC

    def test_three_atom_falls_back(self):
        r = parse_rules(
            PREFIX + "[m: (?a ex:p ?b) (?b ex:q ?c) (?c ex:r ?d) -> (?a ex:s ?d)]"
        )[0]
        assert build_plan(r).kind is PlanKind.GENERIC

    def test_engine_reports_kernel_kinds(self):
        rules = parse_rules(
            PREFIX
            + "[z: (?x ex:p ?y) -> (?y ex:q ?x)]"
            + "[t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]"
            + "[m: (?a ex:p ?b) (?b ex:q ?c) (?c ex:r ?d) -> (?a ex:s ?d)]"
        )
        assert SemiNaiveEngine(rules).kernel_kinds == ("scan", "join", "generic")
        assert SemiNaiveEngine(rules, compile_rules=False).kernel_kinds == (
            "generic",
            "generic",
            "generic",
        )

    def test_variable_predicate_rule_is_wildcard_dispatch(self):
        r = parse_rules(
            PREFIX + "[p11a: (?s <http://www.w3.org/2002/07/owl#sameAs> ?x)"
            " (?s ?p ?o) -> (?x ?p ?o)]"
        )[0]
        plan = build_plan(r)
        assert plan.kind is PlanKind.JOIN
        assert plan.body_predicates is None


# -- kernel correctness ------------------------------------------------------


class TestKernels:
    def test_transitive_chain_closure(self):
        g = chain(5)
        SemiNaiveEngine(TRANS).run(g)
        assert len(g) == 15

    def test_scan_kernel_rewrites(self):
        rules = parse_rules(PREFIX + "[z: (?x ex:p ?y) -> (?y ex:q ?x)]")
        g = chain(3)
        result = SemiNaiveEngine(rules).run(g)
        assert result.stats.derived == 3
        assert Triple(URI("ex:n1"), URI("ex:q"), URI("ex:n0")) in g

    def test_scan_kernel_repeated_variable(self):
        rules = parse_rules(PREFIX + "[r: (?x ex:p ?x) -> (?x ex:self ?x)]")
        g = Graph()
        g.add_spo(URI("ex:a"), URI("ex:p"), URI("ex:a"))
        g.add_spo(URI("ex:a"), URI("ex:p"), URI("ex:b"))
        result = SemiNaiveEngine(rules).run(g)
        assert result.stats.derived == 1
        assert Triple(URI("ex:a"), URI("ex:self"), URI("ex:a")) in g

    def test_join_kernel_repeated_variable_in_other_atom(self):
        rules = parse_rules(
            PREFIX + "[r: (?x ex:p ?y) (?y ex:q ?y) -> (?x ex:r ?y)]"
        )
        g = Graph()
        g.add_spo(URI("ex:a"), URI("ex:p"), URI("ex:b"))
        g.add_spo(URI("ex:b"), URI("ex:q"), URI("ex:b"))
        g.add_spo(URI("ex:b"), URI("ex:q"), URI("ex:c"))
        result = SemiNaiveEngine(rules).run(g)
        assert result.stats.derived == 1
        assert Triple(URI("ex:a"), URI("ex:r"), URI("ex:b")) in g

    def test_join_kernel_variable_predicate(self):
        # The sameAs-propagation shape: second atom has a variable predicate.
        rules = parse_rules(
            PREFIX + "[p11a: (?s ex:same ?x) (?s ?p ?o) -> (?x ?p ?o)]"
        )
        g = Graph()
        g.add_spo(URI("ex:a"), URI("ex:same"), URI("ex:b"))
        g.add_spo(URI("ex:a"), URI("ex:knows"), URI("ex:c"))
        SemiNaiveEngine(rules).run(g)
        assert Triple(URI("ex:b"), URI("ex:knows"), URI("ex:c")) in g
        # ... including propagating the sameAs triple itself.
        assert Triple(URI("ex:b"), URI("ex:same"), URI("ex:b")) in g

    def test_literal_subject_derivation_dropped(self):
        rules = parse_rules(PREFIX + "[r: (?s ex:p ?o) -> (?o ex:t ?s)]")
        g = Graph([Triple(URI("ex:a"), URI("ex:p"), Literal("lit"))])
        result = SemiNaiveEngine(rules).run(g)
        assert result.stats.derived == 0

    def test_resume_with_delta(self):
        base = chain(4)
        extra = [Triple(URI("ex:n4"), URI("ex:p"), URI("ex:n5"))]
        full = chain(5)
        SemiNaiveEngine(TRANS).run(full)
        engine = SemiNaiveEngine(TRANS)
        engine.run(base)
        engine.run(base, delta=extra)
        assert base == full


# -- duplicate-derivation fix (satellite) ------------------------------------


class TestDeltaDedup:
    def test_compiled_fires_once_per_binding(self):
        # a-p-b, b-p-c: the single derivation (a,b,c) matches the delta at
        # both body positions in round 1; pre-fix engines fired it twice.
        g = chain(2)
        result = SemiNaiveEngine(TRANS).run(g)
        assert result.stats.firings == 1

    def test_generic_interpreter_dedupes_too(self):
        g = chain(2)
        result = SemiNaiveEngine(TRANS, compile_rules=False).run(g)
        assert result.stats.firings == 1

    def test_firings_drop_on_delta_heavy_round(self):
        # Round 1 of a from-scratch run is maximally delta-heavy (Δ = G):
        # every 2-atom binding used to be derived once per delta position.
        # Firings must now equal distinct bindings: one per adjacent pair
        # plus the downstream rounds' single-position derivations.
        g = chain(8)
        result = SemiNaiveEngine(TRANS).run(g)
        generic = SemiNaiveEngine(TRANS, compile_rules=False).run(chain(8))
        assert result.stats.firings == generic.stats.firings
        # The closure of an 8-edge chain: every firing is a distinct
        # binding; duplicates would push this above the pair count.
        naive = NaiveEngine(TRANS).run(chain(8))
        assert result.stats.firings < naive.stats.firings

    def test_compiled_probes_below_generic(self):
        # The compiled join restricts half B to G ∖ Δ inside the index
        # walk, so delta-heavy rounds examine strictly fewer candidates.
        compiled = SemiNaiveEngine(TRANS).run(chain(10))
        generic = SemiNaiveEngine(TRANS, compile_rules=False).run(chain(10))
        assert compiled.stats.join_probes < generic.stats.join_probes


# -- predicate dispatch (satellite: dispatch-count unit test) ----------------


class TestDispatch:
    RULES = parse_rules(
        PREFIX
        + "[a: (?x ex:p ?y) -> (?x ex:q ?y)]"
        + "[b: (?x ex:r ?y) -> (?x ex:s ?y)]"
    )

    def test_rules_skipped_when_predicates_absent(self):
        g = chain(3)  # only ex:p triples
        result = SemiNaiveEngine(self.RULES).run(g)
        # Round 1 (Δ predicates = {p}): rule a dispatched, b skipped.
        # Round 2 (Δ predicates = {q}): nothing dispatched, both skipped.
        assert result.stats.iterations == 2
        assert result.stats.rules_dispatched == 1
        assert result.stats.rules_skipped == 3

    def test_generic_engine_has_no_dispatch(self):
        g = chain(3)
        result = SemiNaiveEngine(self.RULES, compile_rules=False).run(g)
        assert result.stats.rules_dispatched == 2 * result.stats.iterations
        assert result.stats.rules_skipped == 0

    def test_dispatch_preserves_fixpoint(self):
        g1, g2 = chain(5), chain(5)
        SemiNaiveEngine(self.RULES).run(g1)
        SemiNaiveEngine(self.RULES, compile_rules=False).run(g2)
        assert g1 == g2

    def test_wildcard_rule_always_dispatched(self):
        rules = parse_rules(
            PREFIX + "[w: (?s ex:same ?x) (?s ?p ?o) -> (?x ?p ?o)]"
        )
        idx = DispatchIndex([build_plan(r) for r in rules])
        assert idx.candidates(set()) == [0]
        assert idx.candidates({URI("ex:whatever")}) == [0]

    def test_dispatch_index_candidates(self):
        idx = DispatchIndex([build_plan(r) for r in self.RULES])
        assert idx.candidates({URI("ex:p")}) == [0]
        assert idx.candidates({URI("ex:r")}) == [1]
        assert idx.candidates({URI("ex:p"), URI("ex:r")}) == [0, 1]
        assert idx.candidates({URI("ex:absent")}) == []


# -- differential property test (satellite) ----------------------------------

EX = "http://example.org/diff#"


def _rich_tbox() -> Graph:
    """A TBox exercising every kernel-relevant rule shape: scan rules
    (hierarchy, domain/range, inverse, symmetric), join rules (transitive,
    someValuesFrom), and the sameAs equality theory with its
    variable-predicate propagation split (via the functional property)."""
    g = Graph()
    g.add_spo(URI(EX + "Student"), RDFS.subClassOf, URI(EX + "Person"))
    g.add_spo(URI(EX + "Person"), RDFS.subClassOf, URI(EX + "Agent"))
    g.add_spo(URI(EX + "advisor"), RDFS.domain, URI(EX + "Student"))
    g.add_spo(URI(EX + "advisor"), RDFS.range, URI(EX + "Person"))
    g.add_spo(URI(EX + "knows"), RDF.type, OWL.SymmetricProperty)
    g.add_spo(URI(EX + "partOf"), RDF.type, OWL.TransitiveProperty)
    g.add_spo(URI(EX + "advisor"), OWL.inverseOf, URI(EX + "advises"))
    g.add_spo(URI(EX + "hasId"), RDF.type, OWL.InverseFunctionalProperty)
    g.add_spo(URI(EX + "Restriction1"), OWL.onProperty, URI(EX + "advisor"))
    g.add_spo(URI(EX + "Restriction1"), OWL.someValuesFrom, URI(EX + "Person"))
    g.add_spo(URI(EX + "Restriction1"), RDFS.subClassOf, URI(EX + "Advised"))
    return g


HORST_RULES = compile_ontology(_rich_tbox(), include_sameas_propagation=True).rules

_individuals = st.integers(min_value=0, max_value=6).map(
    lambda i: URI(f"{EX}ind{i}")
)
_classes = st.sampled_from(
    [URI(EX + "Student"), URI(EX + "Person"), URI(EX + "Agent")]
)
_ids = st.integers(min_value=0, max_value=2).map(lambda i: URI(f"{EX}id{i}"))

_instance_triples = st.one_of(
    st.tuples(
        _individuals,
        st.sampled_from(
            [
                URI(EX + "advisor"),
                URI(EX + "advises"),
                URI(EX + "knows"),
                URI(EX + "partOf"),
            ]
        ),
        _individuals,
    ),
    st.tuples(_individuals, st.just(RDF.type), _classes),
    st.tuples(_individuals, st.just(URI(EX + "hasId")), _ids),
)


@st.composite
def _instance_graphs(draw):
    triples = draw(st.lists(_instance_triples, min_size=0, max_size=18))
    g = Graph()
    for s, p, o in triples:
        g.add_spo(s, p, o)
    return g


class TestDifferential:
    @settings(max_examples=30, deadline=None)
    @given(_instance_graphs())
    def test_three_layers_agree_on_full_horst_set(self, data):
        g_naive = data.copy()
        g_generic = data.copy()
        g_compiled = data.copy()
        NaiveEngine(HORST_RULES).run(g_naive)
        generic = SemiNaiveEngine(HORST_RULES, compile_rules=False).run(g_generic)
        compiled = SemiNaiveEngine(HORST_RULES).run(g_compiled)
        assert g_naive == g_generic
        assert g_naive == g_compiled
        # Identical fixpoints and identical derivation accounting ...
        assert compiled.stats.derived == generic.stats.derived
        assert compiled.stats.firings == generic.stats.firings
        # ... with the compiled layer never examining more candidates.
        assert compiled.stats.join_probes <= generic.stats.join_probes

    @settings(max_examples=10, deadline=None)
    @given(_instance_graphs(), _instance_graphs())
    def test_compiled_delta_resume_agrees(self, base, extra):
        # Resume semantics: fixpoint(base) then delta-resume(extra) must
        # equal a from-scratch fixpoint of base + extra, on both layers.
        full = base.copy()
        full.update(iter(extra))
        SemiNaiveEngine(HORST_RULES).run(full)

        resumed = base.copy()
        engine = SemiNaiveEngine(HORST_RULES)
        engine.run(resumed)
        engine.run(resumed, delta=list(extra))
        assert resumed == full


# -- stats plumbing ----------------------------------------------------------


class TestStatsPlumbing:
    def test_merge_includes_dispatch_counters(self):
        from repro.datalog.engine import EngineStats

        a = EngineStats(rules_dispatched=2, rules_skipped=3)
        b = EngineStats(rules_dispatched=10, rules_skipped=20)
        a.merge(b)
        assert (a.rules_dispatched, a.rules_skipped) == (12, 23)

    def test_work_formula_unchanged(self):
        g = chain(5)
        result = SemiNaiveEngine(TRANS).run(g)
        assert result.stats.work == result.stats.join_probes + result.stats.firings
