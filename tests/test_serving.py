"""Tests for the resident serving tier (:mod:`repro.serving`): answer
correctness against the single-node id index, version-keyed cache
invalidation through the DRed write path, admission control, and the
load driver."""

import threading

import pytest

from repro.datalog.ast import Atom
from repro.datasets import LUBM
from repro.datasets.lubm import UB
from repro.datasets.lubm_queries import LUBM_QUERIES
from repro.owl import MaterializedKB
from repro.owl.vocabulary import RDF
from repro.rdf import BGPQuery, Graph, Triple, URI
from repro.rdf.terms import Variable
from repro.serving import (
    KBServer,
    LoadReport,
    ServerClosedError,
    ServerOverloadedError,
    WorkerResultCache,
    run_load,
    write_serving_bench,
)
from repro.serving.server import _PatternAnswer

X, Y = Variable("x"), Variable("y")


def u(name):
    return URI(f"ex:{name}")


def rows_of(solutions, variables):
    return sorted(tuple(sol[v] for v in variables) for sol in solutions)


@pytest.fixture(scope="module")
def dataset():
    return LUBM(2, seed=0, departments_per_university=2,
                faculty_per_department=2, students_per_faculty=3,
                cross_university_fraction=0.0)


@pytest.fixture(scope="module")
def server(dataset):
    with KBServer.load(dataset.ontology, dataset.data, k=3) as srv:
        yield srv


class TestQueryCorrectness:
    def test_all_lubm_queries_match_id_index(self, server):
        index = server.kb.id_index()
        for query in LUBM_QUERIES:
            bgp = query.parse().bgp
            variables = tuple(sorted(bgp.variables(), key=lambda v: v.name))
            expected = rows_of(index.execute(bgp), variables)
            assert rows_of(server.query(bgp), variables) == expected, \
                query.name
            assert expected, f"{query.name} should have answers"

    def test_async_backend_serves_same_answers(self, dataset):
        with KBServer.load(dataset.ontology, dataset.data, k=3,
                           backend="async") as srv:
            index = srv.kb.id_index()
            for query in LUBM_QUERIES[:4]:
                bgp = query.parse().bgp
                variables = tuple(
                    sorted(bgp.variables(), key=lambda v: v.name))
                assert rows_of(srv.query(bgp), variables) == \
                    rows_of(index.execute(bgp), variables), query.name

    def test_serial_fallback_without_workers(self, dataset):
        kb = MaterializedKB(dataset.ontology)
        kb.add(iter(dataset.data))
        with KBServer(kb) as srv:
            bgp = LUBM_QUERIES[0].parse().bgp
            variables = tuple(sorted(bgp.variables(), key=lambda v: v.name))
            assert rows_of(srv.query(bgp), variables) == \
                rows_of(kb.id_index().execute(bgp), variables)

    def test_query_validation(self, server):
        with pytest.raises(ValueError, match="at least one pattern"):
            server.submit([])
        with pytest.raises(TypeError, match="must be an Atom"):
            server.submit(["nope"])


class TestCaching:
    def test_repeats_hit_the_cache(self, dataset):
        with KBServer.load(dataset.ontology, dataset.data, k=2) as srv:
            bgp = next(
                q for q in LUBM_QUERIES if q.name == "Q6").parse().bgp
            first = srv.query(bgp)
            miss_floor = srv.stats.cache_misses
            for _ in range(3):
                assert srv.query(bgp) == first
            stats = srv.stats
            assert stats.cache_misses == miss_floor  # no recomputation
            assert stats.cache_hits > 0
            assert stats.cache_hit_rate > 0

    def test_apply_invalidates_by_version(self, dataset):
        with KBServer.load(dataset.ontology, dataset.data, k=2) as srv:
            pattern = [Atom(X, RDF.type, UB.FullProfessor)]
            before = srv.query(pattern)
            srv.query(pattern)  # warm the cache
            newcomer = Triple(u("newprof"), RDF.type, UB.FullProfessor)
            result = srv.apply(adds=[newcomer])
            assert newcomer in result.graph
            after = srv.query(pattern)
            assert len(after) == len(before) + 1
            assert {row[X] for row in after} == \
                {row[X] for row in before} | {u("newprof")}
            # and back: retraction flows through DRed to the workers
            srv.apply(removes=[newcomer])
            assert rows_of(srv.query(pattern), (X,)) == \
                rows_of(before, (X,))
            assert srv.stats.applied == 2

    def test_writes_serialize_with_reads(self, dataset):
        """A read submitted after a write observes the applied state
        (both ride the same queue)."""
        with KBServer.load(dataset.ontology, dataset.data, k=2) as srv:
            pattern = [Atom(X, RDF.type, UB.FullProfessor)]
            baseline = len(srv.query(pattern))
            apply_f = srv.submit_apply(
                adds=[Triple(u("p2"), RDF.type, UB.FullProfessor)])
            read_f = srv.submit(pattern)
            assert len(read_f.result(30)) == baseline + 1
            apply_f.result(30)


class TestWorkerResultCache:
    answer = _PatternAnswer(None, None, None, probes=0, payload_bytes=0)

    def test_version_mismatch_is_a_miss(self):
        cache = WorkerResultCache()
        pat = Atom(X, u("p"), Y)
        cache.store(pat, version=1, answer=self.answer)
        assert cache.lookup(pat, version=1) is self.answer
        assert cache.lookup(pat, version=2) is None
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = WorkerResultCache(maxsize=2)
        a, b, c = (Atom(X, u(n), Y) for n in "abc")
        cache.store(a, 1, self.answer)
        cache.store(b, 1, self.answer)
        cache.lookup(a, 1)  # a is now most recent
        cache.store(c, 1, self.answer)  # evicts b
        assert len(cache) == 2
        assert cache.lookup(a, 1) is not None
        assert cache.lookup(b, 1) is None

    def test_maxsize_validated(self):
        with pytest.raises(ValueError, match="positive"):
            WorkerResultCache(0)


class TestAdmissionControl:
    def test_overload_rejects_typed(self, dataset):
        kb = MaterializedKB(dataset.ontology)
        kb.add(iter(dataset.data))
        srv = KBServer(kb, capacity=2, batch_size=1)
        try:
            release = threading.Event()
            started = threading.Event()
            real_apply = kb.apply

            def slow_apply(adds=(), removes=()):
                started.set()
                release.wait(timeout=30)
                return real_apply(adds, removes)

            kb.apply = slow_apply
            blocker = srv.submit_apply()
            assert started.wait(timeout=30)  # serve thread is now stuck
            pattern = [Atom(X, RDF.type, UB.FullProfessor)]
            queued = [srv.submit(pattern) for _ in range(2)]
            with pytest.raises(ServerOverloadedError) as err:
                srv.submit(pattern)
            assert err.value.capacity == 2
            assert srv.stats.rejected == 1
            release.set()
            blocker.result(30)
            for f in queued:
                assert f.result(30)  # queued work still completes
        finally:
            release.set()
            srv.close()

    def test_constructor_validation(self, dataset):
        kb = MaterializedKB(Graph())
        with pytest.raises(ValueError, match="capacity"):
            KBServer(kb, capacity=0)
        with pytest.raises(ValueError, match="batch_size"):
            KBServer(kb, batch_size=0)

    def test_term_workers_rejected(self, dataset):
        from repro.parallel import ParallelReasoner

        pr = ParallelReasoner(dataset.ontology, k=2, approach="data")
        result = pr.materialize(dataset.data)
        kb = MaterializedKB(dataset.ontology)
        with pytest.raises(ValueError, match="id-native"):
            KBServer(kb, workers=result.workers)


class TestLifecycle:
    def test_closed_server_rejects_submits(self, dataset):
        kb = MaterializedKB(dataset.ontology)
        kb.add(iter(dataset.data))
        srv = KBServer(kb)
        bgp = LUBM_QUERIES[0].parse().bgp
        assert srv.query(bgp)
        srv.close()
        with pytest.raises(ServerClosedError):
            srv.submit(bgp)

    def test_repr(self, server):
        assert "workers" in repr(server)


class TestLoadDriver:
    def test_run_load_reports(self, server):
        queries = [q.parse().bgp for q in LUBM_QUERIES[:6]]
        report = run_load(server, queries, concurrency=2,
                          requests_per_client=12, label="test")
        assert isinstance(report, LoadReport)
        assert report.completed == report.requests == 24
        assert report.rejected == 0
        assert report.qps > 0
        assert 0 < report.p50_ms <= report.p99_ms
        # closed-loop repeats of a 6-query mix must re-hit the caches
        assert report.cache_hit_rate > 0

    def test_run_load_validation(self, server):
        with pytest.raises(ValueError, match="concurrency"):
            run_load(server, [LUBM_QUERIES[0].parse().bgp], 0, 1)
        with pytest.raises(ValueError, match="at least one query"):
            run_load(server, [], 1, 1)

    def test_write_serving_bench(self, tmp_path):
        reports = [
            LoadReport(label="c1", concurrency=1, requests=10, completed=10,
                       rejected=0, duration_s=1.0, qps=10.0, p50_ms=1.0,
                       p99_ms=2.0, cache_hit_rate=0.5),
            LoadReport(label="c4", concurrency=4, requests=40, completed=40,
                       rejected=0, duration_s=1.0, qps=40.0, p50_ms=1.5,
                       p99_ms=3.0, cache_hit_rate=0.9),
        ]
        path = tmp_path / "BENCH_serving.json"
        payload = write_serving_bench(path, reports, meta={"k": 2})
        assert path.exists()
        assert payload["meta"] == {"k": 2}
        assert len(payload["levels"]) == 2
        # headline is the best-QPS level
        assert payload["headline"]["concurrency"] == 4
        assert payload["headline"]["qps"] == 40.0
        with pytest.raises(ValueError, match="at least one report"):
            write_serving_bench(path, [])
