"""Unit tests for the cubic performance model (Figs 3/4 machinery)."""

import pytest

from repro.perfmodel import (
    CubicModel,
    PerformancePoint,
    fit_cubic,
    sweep_serial_times,
    theoretical_max_speedup,
)
from repro.rdf import Graph, URI


def points_from(fn, sizes=(1, 2, 3, 4, 5, 8)):
    return [PerformancePoint(size=s, time=fn(s)) for s in sizes]


class TestFitCubic:
    def test_recovers_exact_cubic(self):
        model = fit_cubic(points_from(lambda n: 3 * n**3 + 2 * n**2 + n + 7))
        c3, c2, c1, c0 = model.coefficients
        assert c3 == pytest.approx(3, abs=1e-6)
        assert c2 == pytest.approx(2, abs=1e-5)
        assert c1 == pytest.approx(1, abs=1e-4)
        assert c0 == pytest.approx(7, abs=1e-4)
        assert model.r_squared == pytest.approx(1.0)

    def test_linear_data_gets_zero_leading_coefficient(self):
        model = fit_cubic(points_from(lambda n: 5 * n))
        assert abs(model.leading_coefficient) < 1e-6

    def test_noisy_data_r_squared_below_one(self):
        pts = points_from(lambda n: n**2 + (n % 2) * 3)
        model = fit_cubic(pts)
        assert 0.9 < model.r_squared < 1.0

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_cubic(points_from(lambda n: n, sizes=(1, 2, 3)))

    def test_model_is_callable(self):
        model = CubicModel(coefficients=(1, 0, 0, 0), r_squared=1.0)
        assert model(2) == 8

    def test_describe_mentions_r_squared(self):
        model = fit_cubic(points_from(lambda n: n**3))
        assert "R²" in model.describe()


class TestTheoreticalMaxSpeedup:
    def test_linear_model_gives_linear_speedup(self):
        model = CubicModel(coefficients=(0, 0, 2, 0), r_squared=1.0)
        assert theoretical_max_speedup(model, 1000, 4) == pytest.approx(4)

    def test_cubic_model_gives_superlinear_speedup(self):
        model = CubicModel(coefficients=(1e-6, 0, 0, 0), r_squared=1.0)
        assert theoretical_max_speedup(model, 1000, 4) == pytest.approx(64)

    def test_quadratic_plus_linear_between(self):
        model = CubicModel(coefficients=(0, 1, 1000, 0), r_squared=1.0)
        s = theoretical_max_speedup(model, 1000, 4)
        assert 4 < s < 16

    def test_k1_is_unity(self):
        model = CubicModel(coefficients=(1, 1, 1, 1), r_squared=1.0)
        assert theoretical_max_speedup(model, 100, 1) == pytest.approx(1)

    def test_invalid_k(self):
        model = CubicModel(coefficients=(1, 0, 0, 0), r_squared=1.0)
        with pytest.raises(ValueError):
            theoretical_max_speedup(model, 100, 0)


class TestSweep:
    def test_sweep_uses_node_counts(self):
        def build(size):
            g = Graph()
            for i in range(size):
                g.add_spo(URI(f"ex:{size}-{i}"), URI("ex:p"), URI(f"ex:{size}-{i + 1}"))
            return g, lambda: float(size) * 2

        points = sweep_serial_times((2, 4), build)
        assert len(points) == 2
        assert points[0].size == 3  # size-2 chain has 3 nodes
        assert points[1].time == 8.0
