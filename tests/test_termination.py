"""Unit tests for the counting termination detector."""

import pytest

from repro.parallel.termination import CountingTermination


def _booted(k):
    det = CountingTermination(k)
    for i in range(k):
        det.mark_bootstrapped(i)
    return det


class TestCountingTermination:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            CountingTermination(0)

    def test_not_quiescent_before_all_bootstrapped(self):
        det = CountingTermination(3)
        det.mark_bootstrapped(0)
        det.mark_bootstrapped(1)
        assert not det.quiescent()
        det.mark_bootstrapped(2)
        assert det.quiescent()

    def test_forwarded_message_blocks_quiescence(self):
        det = _booted(2)
        det.record_forward(1)
        assert not det.quiescent()
        assert det.in_flight() == 1

    def test_ack_restores_quiescence(self):
        det = _booted(2)
        det.record_forward(1)
        det.record_ack(1, consumed=1)
        assert det.quiescent()
        assert det.in_flight() == 0

    def test_no_premature_stop_with_partial_acks(self):
        """Three in flight, two acknowledged: must not report quiescent."""
        det = _booted(2)
        for _ in range(3):
            det.record_forward(0)
        det.record_ack(0, consumed=2)
        assert not det.quiescent()
        det.record_ack(0, consumed=3)
        assert det.quiescent()

    def test_incremental_delivery_variant(self):
        det = _booted(3)
        det.record_forward(2)
        det.record_forward(2)
        det.record_delivery(2)
        assert not det.quiescent()
        det.record_delivery(2)
        assert det.quiescent()

    def test_ack_going_backwards_rejected(self):
        det = _booted(2)
        det.record_forward(0)
        det.record_ack(0, consumed=1)
        with pytest.raises(ValueError):
            det.record_ack(0, consumed=0)

    def test_interleaved_traffic_only_quiesces_at_true_fixpoint(self):
        """Simulate a ping-pong: every ack spawns a new forward until the
        chain dies; quiescence must hold exactly at the end."""
        det = _booted(2)
        det.record_forward(0)
        for hop in range(5):
            assert not det.quiescent()
            det.record_delivery(0 if hop % 2 == 0 else 1)
            det.record_forward(1 if hop % 2 == 0 else 0)
        assert not det.quiescent()
        det.record_delivery(1)  # last message consumed, nothing produced
        assert det.quiescent()
