"""Unit tests for the RDF term model (interning, ordering, validation)."""

import pickle

import pytest

from repro.rdf.terms import (
    BNode,
    Literal,
    URI,
    Variable,
    intern_stats,
    is_resource,
)


class TestURI:
    def test_interning_returns_same_object(self):
        assert URI("http://x.org/a") is URI("http://x.org/a")

    def test_distinct_values_differ(self):
        assert URI("ex:a") != URI("ex:b")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            URI("")

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            URI(42)

    def test_n3_form(self):
        assert URI("ex:a").n3() == "<ex:a>"

    def test_local_name_hash(self):
        assert URI("http://x.org/ns#Student").local_name() == "Student"

    def test_local_name_slash(self):
        assert URI("http://x.org/people/alice").local_name() == "alice"

    def test_local_name_no_separator(self):
        # Only '#' and '/' split; opaque URNs come back whole.
        assert URI("urn:isbn:12").local_name() == "urn:isbn:12"
        assert URI("opaque").local_name() == "opaque"

    def test_pickle_round_trip_reinterns(self):
        a = URI("ex:pickle-me")
        restored = pickle.loads(pickle.dumps(a))
        assert restored is a


class TestBNode:
    def test_interning(self):
        assert BNode("b1") is BNode("b1")

    def test_str(self):
        assert str(BNode("b1")) == "_:b1"

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            BNode("")

    def test_not_equal_to_uri(self):
        assert BNode("x") != URI("x")


class TestLiteral:
    def test_plain_interning(self):
        assert Literal("hi") is Literal("hi")

    def test_datatype_distinguishes(self):
        xsd_int = URI("http://www.w3.org/2001/XMLSchema#integer")
        assert Literal("1") != Literal("1", datatype=xsd_int)

    def test_language_normalized_to_lowercase(self):
        assert Literal("hi", language="EN") is Literal("hi", language="en")

    def test_datatype_and_language_mutually_exclusive(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=URI("ex:dt"), language="en")

    def test_n3_escaping(self):
        lit = Literal('say "hi"\n')
        assert lit.n3() == '"say \\"hi\\"\\n"'

    def test_n3_with_language(self):
        assert Literal("hi", language="en").n3() == '"hi"@en'

    def test_n3_with_datatype(self):
        assert Literal("1", datatype=URI("ex:int")).n3() == '"1"^^<ex:int>'


class TestVariable:
    def test_interning(self):
        assert Variable("x") is Variable("x")

    def test_sigil_rejected(self):
        with pytest.raises(ValueError):
            Variable("?x")

    def test_str(self):
        assert str(Variable("x")) == "?x"

    def test_is_variable_flag(self):
        assert Variable("x").is_variable
        assert not URI("ex:a").is_variable


class TestOrdering:
    def test_kind_order(self):
        # URIs < BNodes < Literals < Variables
        terms = [Variable("v"), Literal("l"), BNode("b"), URI("a")]
        assert sorted(terms) == [URI("a"), BNode("b"), Literal("l"), Variable("v")]

    def test_within_kind_lexicographic(self):
        assert URI("ex:a") < URI("ex:b")

    def test_total_order_consistency(self):
        a, b = URI("ex:a"), BNode("a")
        assert (a < b) != (b < a)
        assert a <= a and a >= a


class TestIsResource:
    def test_uri_and_bnode_are_resources(self):
        assert is_resource(URI("ex:a"))
        assert is_resource(BNode("b"))

    def test_literal_and_variable_are_not(self):
        assert not is_resource(Literal("x"))
        assert not is_resource(Variable("v"))


def test_intern_stats_reports_counts():
    URI("ex:stats-probe")
    stats = intern_stats()
    assert stats["uri"] >= 1
    assert set(stats) == {"uri", "bnode", "literal", "variable"}
