"""Memory-budgeted compressed run store: block codec, LSM maintenance
(seal/merge/compaction), spill-under-budget, block pruning, and the
differential tests proving the run-store surface — and the columnar
fixpoint running over it — matches the dense :class:`IdGraph` path
row-for-row and counter-for-counter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datalog import SemiNaiveEngine, parse_rules
from repro.owl.compiler import compile_ontology
from repro.owl.reasoner import HorstReasoner
from repro.owl.vocabulary import OWL, RDF
from repro.parallel.driver import ParallelReasoner
from repro.rdf import Graph, URI
from repro.rdf.dictionary import PartitionDictionary, TermDictionary
from repro.rdf.idstore import IdGraph, pack_columns
from repro.rdf.runstore import (
    RunStore,
    _encode_block_column,
    _OrderIndex,
    order_for,
)

PREFIX = "@prefix ex: <ex:>\n"
TRANS = parse_rules(PREFIX + "[t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]")

POSITION_SUBSETS = [
    (0,), (1,), (2,), (0, 1), (0, 2), (1, 2), (0, 1, 2),
]


def arr(*vals):
    return np.asarray(vals, dtype=np.int64)


def chain(n, pred="ex:p"):
    g = Graph()
    for i in range(n):
        g.add_spo(URI(f"ex:n{i}"), URI(pred), URI(f"ex:n{i + 1}"))
    return g


def random_rows(rng, n, hi=200):
    return (rng.integers(0, hi, n), rng.integers(0, 40, n),
            rng.integers(0, hi, n))


def fill_random(store, rng, total, batch=173, hi=200):
    """Feed ``total`` random rows through ``add_rows`` in odd-sized batches,
    mirroring every insert into a reference set of (s, p, o) tuples."""
    ref = set()
    fed = 0
    while fed < total:
        n = min(batch, total - fed)
        s, p, o = random_rows(rng, n, hi=hi)
        store.add_rows(s, p, o)
        ref.update(zip(s.tolist(), p.tolist(), o.tolist()))
        fed += n
    return ref


def store_rows(store):
    s, p, o = store.columns()
    return set(zip(s.tolist(), p.tolist(), o.tolist()))


# -- block codec -------------------------------------------------------------


class TestBlockCodec:
    def test_sorted_column_uses_delta_mode(self):
        col = np.cumsum(arr(5, 0, 3, 3, 1, 0, 7))
        mode, width, base, payload = _encode_block_column(col)
        assert mode == 1
        assert width == 1  # gaps all fit one byte
        assert base == int(col[0])

    def test_unsorted_column_uses_frame_of_reference(self):
        col = arr(90, 10, 55, 10, 89)
        mode, width, base, payload = _encode_block_column(col)
        assert mode == 0
        assert base == 10
        assert width == 1

    def test_wide_values_get_wide_residuals(self):
        col = arr(0, 1 << 40)
        mode, width, base, payload = _encode_block_column(col)
        assert width == 8

    @pytest.mark.parametrize("block_rows", [64, 128])
    def test_round_trip_through_run(self, block_rows):
        rng = np.random.default_rng(7)
        store = RunStore(tail_rows=256, block_rows=block_rows)
        ref = fill_random(store, rng, 3000)
        assert store_rows(store) == ref
        assert len(store) == len(ref)

    def test_negative_ids_round_trip(self):
        # FOR/delta bases are signed; residual widths are unsigned spans.
        store = RunStore(tail_rows=4, block_rows=64)
        store.add_rows(arr(-5, -1, 3, 7), arr(0, 0, 0, 0), arr(1, 2, 3, 4))
        s, p, o = store.columns()
        assert sorted(s.tolist()) == [-5, -1, 3, 7]


# -- order selection ---------------------------------------------------------


class TestOrderFor:
    @pytest.mark.parametrize("positions,order", [
        ((0,), (0, 1, 2)),
        ((0, 1), (0, 1, 2)),
        ((0, 1, 2), (0, 1, 2)),
        ((1,), (1, 2, 0)),
        ((1, 2), (1, 2, 0)),
        ((2,), (2, 0, 1)),
        ((0, 2), (2, 0, 1)),
    ])
    def test_every_subset_is_an_order_prefix(self, positions, order):
        assert order_for(positions) == order
        # The constrained positions must form a prefix of the order (in
        # some permutation) so range probes stay contiguous.
        assert set(order[: len(positions)]) == set(positions)


# -- LSM maintenance ---------------------------------------------------------


class TestLsmMaintenance:
    def test_seal_and_merge_counters(self):
        rng = np.random.default_rng(11)
        store = RunStore(tail_rows=64, block_rows=64, fanout=2)
        fill_random(store, rng, 2000)
        stats = store.store_stats()
        assert stats["seals"] > 0
        assert stats["merges"] > 0
        assert stats["rows"] == len(store)
        assert stats["tail_rows"] < 64

    def test_run_count_stays_logarithmic(self):
        rng = np.random.default_rng(13)
        store = RunStore(tail_rows=32, block_rows=64, fanout=2)
        fill_random(store, rng, 4000, hi=10_000)
        # Size-tiered with fanout f over r sealed tails keeps at most
        # ~f * log_f(r) runs alive; far below the ~125 seals this feeds.
        assert store.store_stats()["runs"] <= 2 * 14

    def test_dedup_across_runs_and_tail(self):
        store = RunStore(tail_rows=4, block_rows=64)
        a = store.add_rows(arr(1, 2, 3, 4), arr(0, 0, 0, 0), arr(9, 9, 9, 9))
        assert len(a[0]) == 4
        # Re-insert rows now frozen in a run, plus one genuinely new row.
        b = store.add_rows(arr(1, 2, 5), arr(0, 0, 0), arr(9, 9, 9))
        assert len(b[0]) == 1
        assert len(store) == 5

    def test_add_rows_returns_key_sorted_fresh_rows(self):
        store = RunStore(tail_rows=16)
        s, p, o = store.add_rows(arr(9, 1, 5), arr(0, 0, 0), arr(2, 2, 2))
        keys = pack_columns((s, p, o))
        assert np.array_equal(keys, np.sort(keys))

    def test_len_and_contains_across_layers(self):
        rng = np.random.default_rng(17)
        store = RunStore(tail_rows=64, block_rows=64)
        ref = fill_random(store, rng, 1500)
        sample = list(ref)[:300]
        s = arr(*[r[0] for r in sample])
        p = arr(*[r[1] for r in sample])
        o = arr(*[r[2] for r in sample])
        assert store.contains_rows(s, p, o).all()
        assert not store.contains_rows(
            arr(10 ** 6), arr(10 ** 6), arr(10 ** 6)).any()


# -- budget + spill ----------------------------------------------------------


class TestBudget:
    def test_spill_keeps_resident_bytes_under_budget(self):
        budget = 150_000
        rng = np.random.default_rng(19)
        store = RunStore(memory_budget_bytes=budget, block_rows=256)
        ref = fill_random(store, rng, 30_000, hi=5_000)
        stats = store.store_stats()
        assert stats["spills"] > 0
        assert stats["in_ram_bytes"] <= budget
        # Spilled payloads stay fully probe-able.
        assert store_rows(store) == ref

    def test_probe_correct_after_spill(self):
        rng = np.random.default_rng(23)
        store = RunStore(memory_budget_bytes=120_000, block_rows=256)
        dense = IdGraph()
        fed = 0
        while fed < 20_000:
            s, p, o = random_rows(rng, 311, hi=2_000)
            store.add_rows(s, p, o)
            dense.add_rows(s, p, o)
            fed += 311
        assert store.store_stats()["spills"] > 0
        for positions in POSITION_SUBSETS:
            q = tuple(arr(*rng.integers(0, 2_000, 20).tolist())
                      for _ in positions)
            got, got_reps = store.probe(positions, q)
            want, want_reps = dense.probe(positions, q)
            got_k = np.sort(pack_columns(got))
            want_k = np.sort(pack_columns(want))
            assert np.array_equal(got_k, want_k)
            assert got_reps.sum() == want_reps.sum()

    def test_unbudgeted_store_never_spills(self):
        rng = np.random.default_rng(29)
        store = RunStore(tail_rows=128, block_rows=64)
        fill_random(store, rng, 3000)
        assert store.store_stats()["spills"] == 0

    def test_payload_far_below_dense_bytes(self):
        rng = np.random.default_rng(31)
        store, dense = RunStore(tail_rows=1024), IdGraph()
        fed = 0
        while fed < 40_000:
            s, p, o = random_rows(rng, 997, hi=3_000)
            store.add_rows(s, p, o)
            dense.add_rows(s, p, o)
            fed += 997
        # ISSUE acceptance: <= 0.5x dense bytes/triple.
        assert store.payload_bytes() <= 0.5 * dense.memory_bytes()


# -- block pruning -----------------------------------------------------------


class TestBlockPruning:
    def test_point_probe_decodes_few_blocks(self, monkeypatch):
        rng = np.random.default_rng(37)
        # Large enough for many blocks in one run; cache tiny enough that
        # the whole-run fast path is off and every access goes per-block.
        store = RunStore(tail_rows=8192, block_rows=128, cache_bytes=1)
        fill_random(store, rng, 16_384, hi=100_000)
        assert store.store_stats()["runs"] >= 1

        calls = []
        real = _OrderIndex.decode_block

        def counting(self, block):
            calls.append(block)
            return real(self, block)

        monkeypatch.setattr(_OrderIndex, "decode_block", counting)
        s, p, o = store.columns()  # full decode: every block, every run
        total_blocks = len(calls)
        calls.clear()
        store.probe((0, 1, 2), (s[:1], p[:1], o[:1]))
        assert 0 < len(calls) < total_blocks / 4


# -- store differential vs IdGraph -------------------------------------------


class TestStoreDifferential:
    def test_full_surface_matches_dense(self):
        rng = np.random.default_rng(41)
        run = RunStore(tail_rows=256, block_rows=64, fanout=2)
        dense = IdGraph()
        for _ in range(30):
            s, p, o = random_rows(rng, int(rng.integers(1, 400)))
            a = run.add_rows(s, p, o)
            b = dense.add_rows(s, p, o)
            # Fresh-row returns agree (both key-sorted post-dedup).
            assert np.array_equal(pack_columns(a), np.sort(pack_columns(b)))
            assert len(run) == len(dense)
            qs, qp, qo = random_rows(rng, 50)
            assert np.array_equal(
                run.contains_rows(qs, qp, qo),
                dense.contains_rows(qs, qp, qo))
            for positions in POSITION_SUBSETS:
                q = tuple(rng.integers(0, 200, 15) for _ in positions)
                got, got_reps = run.probe(positions, q)
                want, want_reps = dense.probe(positions, q)
                assert np.array_equal(
                    np.sort(pack_columns(got)), np.sort(pack_columns(want)))
                assert got_reps.sum() == want_reps.sum()
        assert store_rows(run) == store_rows(dense)


# -- engine integration ------------------------------------------------------


def _stats_dict(stats):
    return {
        "iterations": stats.iterations,
        "rules_dispatched": stats.rules_dispatched,
        "rules_skipped": stats.rules_skipped,
        "join_probes": stats.join_probes,
        "firings": stats.firings,
        "derived": stats.derived,
    }


class TestEngineIntegration:
    def test_store_selection_and_validation(self):
        assert SemiNaiveEngine(TRANS, engine="columnar").store_kind == "dense"
        assert SemiNaiveEngine(
            TRANS, engine="columnar", store="run").store_kind == "run"
        # A budget implies the run store.
        eng = SemiNaiveEngine(
            TRANS, engine="columnar", memory_budget_bytes=1 << 20)
        assert eng.store_kind == "run"
        with pytest.raises(ValueError):
            SemiNaiveEngine(TRANS, store="run")  # compiled engine: no mirror
        with pytest.raises(ValueError):
            SemiNaiveEngine(TRANS, memory_budget_bytes=1 << 20)
        with pytest.raises(ValueError):
            SemiNaiveEngine(TRANS, engine="columnar", store="holographic")

    def test_run_store_closure_matches_dense(self):
        g_dense, g_run = chain(40), chain(40)
        dense = SemiNaiveEngine(TRANS, engine="columnar").run(g_dense)
        run = SemiNaiveEngine(
            TRANS, engine="columnar", store="run").run(g_run)
        assert g_dense == g_run
        assert _stats_dict(dense.stats) == _stats_dict(run.stats)
        assert set(dense.inferred) == set(run.inferred)

    def test_budgeted_closure_matches_dense(self):
        g_dense, g_run = chain(60), chain(60)
        dense = SemiNaiveEngine(TRANS, engine="columnar").run(g_dense)
        run = SemiNaiveEngine(
            TRANS, engine="columnar", store="run",
            memory_budget_bytes=200_000).run(g_run)
        assert g_dense == g_run
        assert _stats_dict(dense.stats) == _stats_dict(run.stats)

    def test_delta_resume_over_run_store(self):
        base = chain(30)
        extra = [t for t in chain(35) if t not in base]
        full = chain(35)
        SemiNaiveEngine(TRANS, engine="columnar").run(full)
        resumed = chain(30)
        eng = SemiNaiveEngine(TRANS, engine="columnar", store="run")
        eng.run(resumed)
        eng.run(resumed, delta=extra)
        assert resumed == full

    def test_reasoner_forwards_store_choice(self):
        tbox = Graph()
        tbox.add_spo(URI("ex:partOf"), RDF.type, OWL.TransitiveProperty)
        data = chain(25, pred="ex:partOf")
        dense = HorstReasoner(tbox, engine="columnar").materialize(data)
        run = HorstReasoner(
            tbox, engine="columnar", store="run",
            memory_budget_bytes=1 << 20).materialize(data)
        assert set(dense.graph) == set(run.graph)
        assert (_stats_dict(dense.engine_stats)
                == _stats_dict(run.engine_stats))


# -- parallel workers over the run store -------------------------------------


def _mp_tbox():
    g = Graph()
    g.add_spo(URI("ex:partOf"), RDF.type, OWL.TransitiveProperty)
    g.add_spo(URI("ex:linkedTo"), RDF.type, OWL.SymmetricProperty)
    return g


def _mp_data():
    g = Graph()
    for c in range(2):
        for i in range(6):
            g.add_spo(URI(f"ex:c{c}n{i}"), URI("ex:partOf"),
                      URI(f"ex:c{c}n{i + 1}"))
    g.add_spo(URI("ex:c0n6"), URI("ex:partOf"), URI("ex:c1n0"))
    g.add_spo(URI("ex:c0n0"), URI("ex:linkedTo"), URI("ex:c1n3"))
    return g


class TestParallelRunStore:
    def test_id_native_worker_uses_run_store(self):
        from repro.parallel.routing import BroadcastRouter
        from repro.parallel.worker import PartitionWorker

        base = TermDictionary()
        data = _mp_data()
        for t in data:
            base.encode(t.s), base.encode(t.p), base.encode(t.o)
        w = PartitionWorker(
            0, data, compile_ontology(_mp_tbox()).rules, BroadcastRouter(1),
            dictionary=PartitionDictionary(base, 0, 1), engine="columnar",
            store="run", memory_budget_bytes=1 << 20,
        )
        assert w.id_native
        assert isinstance(w._idgraph, RunStore)
        w.bootstrap()
        serial = HorstReasoner(_mp_tbox()).materialize(data)
        assert set(w.output_graph()) == set(serial.graph)

    def test_budget_implies_run_store(self):
        from repro.parallel.routing import BroadcastRouter
        from repro.parallel.worker import PartitionWorker

        base = TermDictionary()
        data = _mp_data()
        for t in data:
            base.encode(t.s), base.encode(t.p), base.encode(t.o)
        w = PartitionWorker(
            0, data, compile_ontology(_mp_tbox()).rules, BroadcastRouter(1),
            dictionary=PartitionDictionary(base, 0, 1), engine="columnar",
            memory_budget_bytes=1 << 20,
        )
        assert w.store == "run"
        assert isinstance(w._idgraph, RunStore)

    def test_parallel_closure_matches_term_reference(self):
        tbox, data = _mp_tbox(), _mp_data()
        mixed = Graph(list(tbox) + list(data))
        ref = ParallelReasoner(tbox, k=3, encode_wire=True).materialize(mixed)
        res = ParallelReasoner(
            tbox, k=3, engine="columnar", store="run",
            memory_budget_bytes=1 << 20,
        ).materialize(mixed)
        assert set(res.graph) == set(ref.graph)

    def test_async_shuffle_over_run_store(self):
        tbox, data = _mp_tbox(), _mp_data()
        mixed = Graph(list(tbox) + list(data))
        ref = ParallelReasoner(tbox, k=3, encode_wire=True).materialize(mixed)
        res = ParallelReasoner(
            tbox, k=3, engine="columnar", store="run",
            memory_budget_bytes=1 << 20,
        ).materialize_async(mixed, delivery="shuffle")
        assert set(res.graph) == set(ref.graph)
