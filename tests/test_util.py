"""Unit tests for the utility layer."""

import pytest

from repro.util import ascii_table, derive_seed, format_float, rng_for
from repro.util.tables import to_csv
from repro.util.timing import Stopwatch, Timer, timed


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            pass
        with t:
            pass
        assert t.starts == 2
        assert t.total >= 0

    def test_double_start_rejected(self):
        t = Timer()
        t.start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_running_flag(self):
        t = Timer()
        assert not t.running
        t.start()
        assert t.running
        t.stop()
        assert not t.running


class TestStopwatch:
    def test_elapsed_monotone(self):
        sw = Stopwatch()
        a = sw.elapsed()
        b = sw.elapsed()
        assert b >= a >= 0

    def test_restart_resets(self):
        sw = Stopwatch()
        first = sw.restart()
        assert first >= 0
        assert sw.elapsed() <= first + 1


def test_timed_context_reports_duration():
    out = []
    with timed(out.append):
        pass
    assert len(out) == 1 and out[0] >= 0


class TestSeeding:
    def test_stable_across_calls(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_labels_matter(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_rng_for_reproducible(self):
        assert rng_for(7, "x").random() == rng_for(7, "x").random()


class TestTables:
    def test_alignment(self):
        out = ascii_table(["col", "x"], [["a", 1], ["long-value", 22]])
        lines = out.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_title(self):
        assert ascii_table(["a"], [[1]], title="T").startswith("T\n")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [[1]])

    def test_to_csv(self):
        assert to_csv(["a", "b"], [[1, 2.5]]) == "a,b\n1,2.5"

    @pytest.mark.parametrize(
        "value,expected",
        [
            (2.0, "2"),
            (0.1234, "0.123"),
            (float("nan"), "nan"),
            (1e-9, "1.000e-09"),
            (0.0, "0"),
        ],
    )
    def test_format_float(self, value, expected):
        assert format_float(value) == expected
