"""Unit tests for the backward (SLD + tabling) engine and the Jena-style
materialization driver."""

import pytest

from repro.datalog import (
    BackwardEngine,
    SemiNaiveEngine,
    materialize_backward,
    parse_rules,
)
from repro.datalog.ast import Atom
from repro.rdf import Graph, Triple, URI
from repro.rdf.terms import Variable

PREFIX = "@prefix ex: <ex:>\n"
TRANS = parse_rules(PREFIX + "[t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]")
P = URI("ex:p")


def chain(n):
    g = Graph()
    for i in range(n):
        g.add_spo(URI(f"ex:n{i}"), P, URI(f"ex:n{i + 1}"))
    return g


class TestQuery:
    def test_ground_goal_entailed(self):
        engine = BackwardEngine(chain(3), TRANS)
        answers = engine.query(Atom(URI("ex:n0"), P, URI("ex:n3")))
        assert Triple(URI("ex:n0"), P, URI("ex:n3")) in answers

    def test_ground_goal_not_entailed(self):
        engine = BackwardEngine(chain(3), TRANS)
        assert engine.query(Atom(URI("ex:n3"), P, URI("ex:n0"))) == set()

    def test_open_object(self):
        engine = BackwardEngine(chain(4), TRANS)
        answers = engine.query(Atom(URI("ex:n0"), P, Variable("o")))
        assert len(answers) == 4  # n1..n4

    def test_open_subject(self):
        engine = BackwardEngine(chain(4), TRANS)
        answers = engine.query(Atom(Variable("s"), P, URI("ex:n4")))
        assert len(answers) == 4

    def test_fully_open_goal_is_full_closure(self):
        g = chain(4)
        engine = BackwardEngine(g.copy(), TRANS)
        answers = engine.query(Atom(Variable("s"), Variable("p"), Variable("o")))
        oracle = chain(4)
        SemiNaiveEngine(TRANS).run(oracle)
        assert Graph(answers) == oracle

    def test_cycle_terminates(self):
        g = chain(3)
        g.add_spo(URI("ex:n3"), P, URI("ex:n0"))
        engine = BackwardEngine(g, TRANS)
        answers = engine.query(Atom(URI("ex:n0"), P, Variable("o")))
        assert len(answers) == 4  # reaches everything incl itself

    def test_tables_are_reused(self):
        engine = BackwardEngine(chain(6), TRANS)
        engine.query(Atom(URI("ex:n0"), P, Variable("o")))
        expanded_first = engine.stats.goals_expanded
        engine.query(Atom(URI("ex:n0"), P, Variable("o")))
        assert engine.stats.goals_expanded == expanded_first  # fully cached

    def test_mutual_recursion(self):
        rules = parse_rules(
            PREFIX
            + "[ab: (?x ex:a ?y) -> (?x ex:b ?y)]"
            + "[ba: (?x ex:b ?y) (?y ex:b ?z) -> (?x ex:a ?z)]"
        )
        g = Graph()
        g.add_spo(URI("ex:1"), URI("ex:a"), URI("ex:2"))
        g.add_spo(URI("ex:2"), URI("ex:a"), URI("ex:3"))
        engine = BackwardEngine(g.copy(), rules)
        answers = engine.query(Atom(Variable("s"), Variable("p"), Variable("o")))
        oracle = g.copy()
        SemiNaiveEngine(rules).run(oracle)
        assert Graph(answers) == oracle

    def test_reserved_variable_prefix_rejected(self):
        bad = parse_rules(PREFIX + "[r: (?__g0 ex:p ?b) -> (?b ex:p ?__g0)]")
        with pytest.raises(ValueError, match="reserved"):
            BackwardEngine(Graph(), bad)


class TestMaterializeBackward:
    @pytest.fixture
    def rules(self):
        return parse_rules(
            PREFIX
            + "[t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]"
            + "[q: (?a ex:p ?b) -> (?a ex:q ?b)]"
        )

    def test_matches_forward_closure(self, rules):
        g = chain(5)
        backward, _ = materialize_backward(g, rules)
        forward = g.copy()
        SemiNaiveEngine(rules).run(forward)
        assert backward == forward

    def test_input_not_mutated(self, rules):
        g = chain(3)
        before = len(g)
        materialize_backward(g, rules)
        assert len(g) == before

    def test_share_tables_same_closure_less_work(self, rules):
        g = chain(6)
        fresh, fresh_stats = materialize_backward(g, rules, share_tables=False)
        shared, shared_stats = materialize_backward(g, rules, share_tables=True)
        assert fresh == shared
        assert shared_stats.goals_expanded < fresh_stats.goals_expanded

    def test_candidate_probing_counts_kn(self, rules):
        g = chain(3)
        _, with_probes = materialize_backward(g, rules, candidate_probing=True)
        _, without = materialize_backward(g, rules, candidate_probing=False)
        n = len(g.resources())
        predicates = 2  # ex:p (base) + ex:q appears only after inference... p only
        assert with_probes.entailment_probes >= n * n  # >= n resources x n objects
        assert without.entailment_probes == 0
        assert with_probes.work > without.work

    def test_explicit_resource_subset(self, rules):
        g = chain(3)
        out, _ = materialize_backward(g, rules, resources=[URI("ex:n0")])
        # Only n0's subject triples are derived beyond the base.
        assert Triple(URI("ex:n0"), P, URI("ex:n3")) in out
        assert Triple(URI("ex:n1"), P, URI("ex:n3")) not in out
