"""Unit tests for the HorstReasoner façade and schema splitting."""

import pytest

from repro.owl import HorstReasoner, split_schema
from repro.owl.vocabulary import OWL, RDF, RDFS
from repro.rdf import Graph, Triple, URI


def u(name):
    return URI(f"ex:{name}")


class TestSplitSchema:
    def test_mixed_graph(self, family_tbox, family_data):
        mixed = family_tbox.union(family_data)
        schema, instance = split_schema(mixed)
        assert schema == family_tbox
        assert instance == family_data

    def test_empty(self):
        schema, instance = split_schema(Graph())
        assert len(schema) == 0 and len(instance) == 0


class TestHorstReasoner:
    def test_subclass_inference(self, family_tbox, family_data, ex):
        result = HorstReasoner(family_tbox).materialize(family_data)
        assert Triple(ex.alice, RDF.type, ex.Person) in result.graph

    def test_domain_range(self, family_tbox, family_data, ex):
        result = HorstReasoner(family_tbox).materialize(family_data)
        assert Triple(ex.alice, RDF.type, ex.Parent) in result.graph

    def test_transitive_via_subproperty(self, family_tbox, family_data, ex):
        result = HorstReasoner(family_tbox).materialize(family_data)
        # hasChild < ancestorOf (transitive): alice ancestorOf dave.
        assert Triple(ex.alice, ex.ancestorOf, ex.dave) in result.graph

    def test_symmetric(self, family_tbox, family_data, ex):
        result = HorstReasoner(family_tbox).materialize(family_data)
        assert Triple(ex.albert, ex.marriedTo, ex.alice) in result.graph

    def test_inverse(self, family_tbox, family_data, ex):
        result = HorstReasoner(family_tbox).materialize(family_data)
        assert Triple(ex.bob, ex.hasParent, ex.alice) in result.graph

    def test_somevaluesfrom_restriction(self, family_tbox, family_data, ex):
        result = HorstReasoner(family_tbox).materialize(family_data)
        assert Triple(ex.alice, RDF.type, ex.DogOwner) in result.graph

    def test_strategies_agree(self, family_tbox, family_data):
        reasoner = HorstReasoner(family_tbox)
        fwd = reasoner.materialize(family_data, strategy="forward")
        bwd = reasoner.materialize(family_data, strategy="backward")
        assert fwd.graph == bwd.graph

    def test_input_not_mutated(self, family_tbox, family_data):
        before = len(family_data)
        HorstReasoner(family_tbox).materialize(family_data)
        assert len(family_data) == before

    def test_include_schema_adds_tbox(self, family_tbox, family_data):
        reasoner = HorstReasoner(family_tbox)
        result = reasoner.materialize(family_data, include_schema=True)
        assert all(t in result.graph for t in reasoner.compiled.schema)

    def test_unknown_strategy(self, family_tbox, family_data):
        with pytest.raises(ValueError):
            HorstReasoner(family_tbox).materialize(family_data, strategy="psychic")

    def test_from_dataset_splits(self, family_tbox, family_data):
        mixed = family_tbox.union(family_data)
        reasoner, instance = HorstReasoner.from_dataset(mixed)
        assert instance == family_data
        result = reasoner.materialize(instance)
        assert result.inferred_count > 0

    def test_work_property(self, family_tbox, family_data):
        reasoner = HorstReasoner(family_tbox)
        assert reasoner.materialize(family_data, strategy="forward").work > 0
        assert reasoner.materialize(family_data, strategy="backward").work > 0

    def test_functional_property_produces_sameas(self):
        tbox = Graph([Triple(u("ssn"), RDF.type, OWL.FunctionalProperty)])
        data = Graph()
        data.add_spo(u("x"), u("ssn"), u("id1"))
        data.add_spo(u("x"), u("ssn"), u("id2"))
        result = HorstReasoner(tbox).materialize(data)
        assert Triple(u("id1"), OWL.sameAs, u("id2")) in result.graph
        # and propagation through the split rdfp11a/b:
        data.add_spo(u("id1"), u("locatedIn"), u("place"))
        result = HorstReasoner(tbox).materialize(data)
        assert Triple(u("id2"), u("locatedIn"), u("place")) in result.graph
