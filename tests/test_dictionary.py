"""Unit tests for term<->id encoding."""

import numpy as np
import pytest

from repro.rdf import EncodedGraph, Graph, Literal, TermDictionary, URI


class TestTermDictionary:
    def test_dense_first_seen_order(self):
        d = TermDictionary()
        assert d.encode(URI("ex:a")) == 0
        assert d.encode(URI("ex:b")) == 1
        assert d.encode(URI("ex:a")) == 0
        assert len(d) == 2

    def test_decode_inverse(self):
        d = TermDictionary()
        for name in ("a", "b", "c"):
            tid = d.encode(URI(f"ex:{name}"))
            assert d.decode(tid) == URI(f"ex:{name}")

    def test_encode_existing_raises_on_unknown(self):
        with pytest.raises(KeyError):
            TermDictionary().encode_existing(URI("ex:zz"))

    def test_contains_and_iter(self):
        d = TermDictionary()
        d.encode(URI("ex:a"))
        assert URI("ex:a") in d
        assert list(d) == [URI("ex:a")]


class TestEncodedGraph:
    @pytest.fixture
    def graph(self):
        g = Graph()
        g.add_spo(URI("ex:a"), URI("ex:p"), URI("ex:b"))
        g.add_spo(URI("ex:b"), URI("ex:p"), Literal("leaf"))
        return g

    def test_round_trip(self, graph):
        eg = EncodedGraph.from_triples(iter(graph))
        assert Graph(eg.triples()) == graph

    def test_lengths(self, graph):
        eg = EncodedGraph.from_triples(iter(graph))
        assert len(eg) == 2
        assert len(eg.s_ids) == len(eg.p_ids) == len(eg.o_ids) == 2

    def test_edges_exclude_literal_objects(self, graph):
        eg = EncodedGraph.from_triples(iter(graph))
        edges = eg.edges()
        assert edges.shape == (1, 2)
        d = eg.dictionary
        assert d.decode(int(edges[0, 0])) == URI("ex:a")
        assert d.decode(int(edges[0, 1])) == URI("ex:b")

    def test_resource_ids_exclude_literals(self, graph):
        eg = EncodedGraph.from_triples(iter(graph))
        terms = {eg.dictionary.decode(int(i)) for i in eg.resource_ids()}
        assert terms == {URI("ex:a"), URI("ex:b")}

    def test_shared_dictionary(self, graph):
        d = TermDictionary()
        d.encode(URI("ex:prefill"))
        eg = EncodedGraph.from_triples(iter(graph), dictionary=d)
        assert eg.dictionary is d
        assert URI("ex:prefill") in d

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            EncodedGraph(
                TermDictionary(),
                np.array([0]),
                np.array([0, 1]),
                np.array([0]),
            )
