"""Unit tests for term<->id encoding."""

import numpy as np
import pytest

from repro.rdf import (
    EncodedGraph,
    Graph,
    Literal,
    PartitionDictionary,
    TermDictionary,
    URI,
)


class TestTermDictionary:
    def test_dense_first_seen_order(self):
        d = TermDictionary()
        assert d.encode(URI("ex:a")) == 0
        assert d.encode(URI("ex:b")) == 1
        assert d.encode(URI("ex:a")) == 0
        assert len(d) == 2

    def test_decode_inverse(self):
        d = TermDictionary()
        for name in ("a", "b", "c"):
            tid = d.encode(URI(f"ex:{name}"))
            assert d.decode(tid) == URI(f"ex:{name}")

    def test_encode_existing_raises_on_unknown(self):
        with pytest.raises(KeyError):
            TermDictionary().encode_existing(URI("ex:zz"))

    def test_contains_and_iter(self):
        d = TermDictionary()
        d.encode(URI("ex:a"))
        assert URI("ex:a") in d
        assert list(d) == [URI("ex:a")]

    def test_get_without_assignment(self):
        d = TermDictionary()
        assert d.get(URI("ex:a")) is None
        assert len(d) == 0
        d.encode(URI("ex:a"))
        assert d.get(URI("ex:a")) == 0

    def test_resource_mask_tracks_kinds(self):
        d = TermDictionary()
        d.encode(URI("ex:a"))
        d.encode(Literal("x"))
        d.encode(URI("ex:b"))
        mask = d.resource_mask(np.array([0, 1, 2, 1]))
        assert mask.tolist() == [True, False, True, False]

    def test_resource_mask_refreshes_after_growth(self):
        d = TermDictionary()
        d.encode(URI("ex:a"))
        assert d.resource_mask(np.array([0])).tolist() == [True]
        d.encode(Literal("x"))
        assert d.resource_mask(np.array([0, 1])).tolist() == [True, False]

    def test_terms_round_trip(self):
        d = TermDictionary()
        for name in ("a", "b", "c"):
            d.encode(URI(f"ex:{name}"))
        rebuilt = TermDictionary.from_terms(d.terms())
        assert [rebuilt.encode_existing(t) for t in d] == [0, 1, 2]


class TestPartitionDictionary:
    @pytest.fixture
    def base(self):
        d = TermDictionary()
        d.encode(URI("ex:a"))
        d.encode(URI("ex:p"))
        return d

    def test_base_ids_pass_through(self, base):
        pd = PartitionDictionary(base, node_id=0, k=2)
        assert pd.encode(URI("ex:a")) == 0
        assert pd.decode(1) == URI("ex:p")
        assert pd.base_size == 2

    def test_minted_ids_in_private_stripe(self, base):
        p0 = PartitionDictionary(base, node_id=0, k=2)
        p1 = PartitionDictionary(base, node_id=1, k=2)
        a = p0.encode(URI("ex:new1"))
        b = p0.encode(URI("ex:new2"))
        c = p1.encode(URI("ex:new1"))
        assert a == 2 and b == 4  # base_size + j*k + 0
        assert c == 3  # base_size + 0*k + 1
        # Disjoint stripes: same term, different workers, different ids...
        assert a != c
        # ...but both decode to the one interned term.
        assert p0.decode(a) is p1.decode(c)

    def test_encode_is_stable(self, base):
        pd = PartitionDictionary(base, node_id=1, k=3)
        tid = pd.encode(Literal("derived"))
        assert pd.encode(Literal("derived")) == tid
        assert pd.get(Literal("derived")) == tid
        assert Literal("derived") in pd

    def test_apply_delta_registers_foreign_ids(self, base):
        p0 = PartitionDictionary(base, node_id=0, k=2)
        p1 = PartitionDictionary(base, node_id=1, k=2)
        tid = p0.encode(URI("ex:minted"))
        p1.apply_delta([(tid, URI("ex:minted"))])
        assert p1.decode(tid) == URI("ex:minted")
        # The foreign id is reused rather than minting a duplicate.
        assert p1.encode(URI("ex:minted")) == tid

    def test_apply_delta_keeps_local_encoding(self, base):
        """A peer's id for a term this worker already minted must not
        displace the local encoding (rows already sent used it)."""
        p0 = PartitionDictionary(base, node_id=0, k=2)
        p1 = PartitionDictionary(base, node_id=1, k=2)
        local = p1.encode(URI("ex:minted"))
        foreign = p0.encode(URI("ex:minted"))
        p1.apply_delta([(foreign, URI("ex:minted"))])
        assert p1.encode(URI("ex:minted")) == local
        assert p1.decode(foreign) == URI("ex:minted")
        assert p1.decode(local) == URI("ex:minted")

    def test_invalid_node_id(self, base):
        with pytest.raises(ValueError):
            PartitionDictionary(base, node_id=2, k=2)


class TestEncodedGraph:
    @pytest.fixture
    def graph(self):
        g = Graph()
        g.add_spo(URI("ex:a"), URI("ex:p"), URI("ex:b"))
        g.add_spo(URI("ex:b"), URI("ex:p"), Literal("leaf"))
        return g

    def test_round_trip(self, graph):
        eg = EncodedGraph.from_triples(iter(graph))
        assert Graph(eg.triples()) == graph

    def test_lengths(self, graph):
        eg = EncodedGraph.from_triples(iter(graph))
        assert len(eg) == 2
        assert len(eg.s_ids) == len(eg.p_ids) == len(eg.o_ids) == 2

    def test_edges_exclude_literal_objects(self, graph):
        eg = EncodedGraph.from_triples(iter(graph))
        edges = eg.edges()
        assert edges.shape == (1, 2)
        d = eg.dictionary
        assert d.decode(int(edges[0, 0])) == URI("ex:a")
        assert d.decode(int(edges[0, 1])) == URI("ex:b")

    def test_resource_ids_exclude_literals(self, graph):
        eg = EncodedGraph.from_triples(iter(graph))
        terms = {eg.dictionary.decode(int(i)) for i in eg.resource_ids()}
        assert terms == {URI("ex:a"), URI("ex:b")}

    def test_shared_dictionary(self, graph):
        d = TermDictionary()
        d.encode(URI("ex:prefill"))
        eg = EncodedGraph.from_triples(iter(graph), dictionary=d)
        assert eg.dictionary is d
        assert URI("ex:prefill") in d

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            EncodedGraph(
                TermDictionary(),
                np.array([0]),
                np.array([0, 1]),
                np.array([0]),
            )


class TestBulkCodecEdgeCases:
    """encode_many / decode_many corners: empty columns, foreign-stripe
    ids, and round-trips across graph-version bumps (appends that grow
    the dictionary and invalidate its cached kind array)."""

    def test_encode_many_empty(self):
        d = TermDictionary()
        ids = d.encode_many([])
        assert ids.dtype == np.int64
        assert len(ids) == 0
        assert len(d) == 0

    def test_decode_many_empty(self):
        d = TermDictionary()
        d.encode(URI("ex:a"))
        assert d.decode_many(np.empty(0, dtype=np.int64)) == []
        # Non-int64 empty input is coerced, not rejected.
        assert d.decode_many(np.empty(0, dtype=np.int32)) == []

    def test_partition_encode_many_empty(self):
        base = TermDictionary()
        pd = PartitionDictionary(base, 0, 2)
        ids = pd.encode_many([])
        assert ids.dtype == np.int64 and len(ids) == 0
        assert pd.decode_many(np.empty(0, dtype=np.int64)) == []

    def test_encode_many_mints_in_iteration_order(self):
        d = TermDictionary()
        d.encode(URI("ex:seen"))
        ids = d.encode_many(
            [URI("ex:new1"), URI("ex:seen"), URI("ex:new1"), URI("ex:new2")])
        assert ids.tolist() == [1, 0, 1, 2]
        assert d.decode_many(ids) == [
            URI("ex:new1"), URI("ex:seen"), URI("ex:new1"), URI("ex:new2")]

    def test_decode_many_foreign_stripe_ids(self):
        base = TermDictionary()
        base.encode_many([URI("ex:base0"), URI("ex:base1")])
        me = PartitionDictionary(base, 0, 3)
        peer = PartitionDictionary(base, 2, 3)
        foreign_id = int(peer.encode(URI("ex:peer-term")))
        # Before the delta lands, the foreign id is undecodable here.
        with pytest.raises(KeyError):
            me.decode_many(np.asarray([foreign_id], dtype=np.int64))
        me.apply_delta([(foreign_id, URI("ex:peer-term"))])
        mixed = np.asarray(
            [0, foreign_id, 1, me.encode(URI("ex:mine"))], dtype=np.int64)
        assert me.decode_many(mixed) == [
            URI("ex:base0"), URI("ex:peer-term"), URI("ex:base1"),
            URI("ex:mine")]

    def test_foreign_stripe_round_trip_reuses_peer_id(self):
        base = TermDictionary()
        base.encode(URI("ex:base"))
        me = PartitionDictionary(base, 0, 2)
        peer = PartitionDictionary(base, 1, 2)
        fid = int(peer.encode(URI("ex:shared")))
        me.apply_delta([(fid, URI("ex:shared"))])
        # encode_many resolves the registered foreign id — no duplicate
        # local mint for a term this worker now knows.
        ids = me.encode_many([URI("ex:shared"), URI("ex:base")])
        assert ids.tolist() == [fid, 0]
        assert me.decode_many(ids) == [URI("ex:shared"), URI("ex:base")]

    def test_round_trip_after_graph_version_bumps(self):
        g = Graph()
        g.add_spo(URI("ex:a"), URI("ex:p"), URI("ex:b"))
        eg = EncodedGraph.from_triples(iter(g))
        d = eg.dictionary
        first = d.encode_many([URI("ex:a"), URI("ex:b")])
        # Force the cached kind array into existence, then bump the
        # graph version twice with appends that mint new terms.
        assert d.resource_mask(first).all()
        delta1 = Graph()
        delta1.add_spo(URI("ex:c"), URI("ex:p"), Literal("v"))
        assert eg.append(iter(delta1)) == 1
        delta2 = Graph()
        delta2.add_spo(URI("ex:d"), URI("ex:q"), URI("ex:a"))
        assert eg.append(iter(delta2)) == 1
        # Pre-bump ids survive the growth unchanged.
        assert np.array_equal(d.encode_many([URI("ex:a"), URI("ex:b")]), first)
        terms = [URI("ex:a"), URI("ex:c"), Literal("v"), URI("ex:d")]
        ids = d.encode_many(terms)
        assert d.decode_many(ids) == terms
        # Kind masks refresh over the grown id space (Literal("v") is
        # the only non-resource).
        assert d.resource_mask(ids).tolist() == [True, True, False, True]
        # The encoded graph's columns decode to exactly the appended rows.
        assert set(eg.triples()) == set(g) | set(delta1) | set(delta2)
