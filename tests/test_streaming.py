"""Tests for the streaming N-Triples partitioner."""

import pytest

from repro.datasets import LUBM
from repro.owl.vocabulary import RDF
from repro.partitioning.streaming import stream_partition
from repro.rdf import Graph, parse_ntriples, serialize_ntriples


@pytest.fixture
def lubm_file(tmp_path):
    ds = LUBM(3, seed=0, departments_per_university=1,
              faculty_per_department=2, students_per_faculty=3)
    path = tmp_path / "data.nt"
    mixed = ds.ontology.union(ds.data)
    path.write_text(serialize_ntriples(mixed), encoding="utf-8")
    return ds, path


class TestStreamHash:
    def test_all_triples_covered(self, lubm_file, tmp_path):
        ds, path = lubm_file
        report = stream_partition(path, tmp_path / "out", k=3)
        union = Graph()
        for pf in report.partition_files:
            union.update(parse_ntriples(pf.read_text(encoding="utf-8")))
        schema = Graph(
            parse_ntriples(report.schema_file.read_text(encoding="utf-8"))
        )
        assert union.union(schema) == ds.ontology.union(ds.data)

    def test_schema_diverted(self, lubm_file, tmp_path):
        ds, path = lubm_file
        report = stream_partition(path, tmp_path / "out", k=2)
        assert report.schema_triples == len(ds.ontology)

    def test_replication_bounds(self, lubm_file, tmp_path):
        _, path = lubm_file
        report = stream_partition(path, tmp_path / "out", k=4)
        assert 1.0 <= report.replication <= 2.0

    def test_type_triples_single_copy(self, lubm_file, tmp_path):
        ds, path = lubm_file
        report = stream_partition(path, tmp_path / "out", k=4)
        type_copies = 0
        for pf in report.partition_files:
            for t in parse_ntriples(pf.read_text(encoding="utf-8")):
                if t.p == RDF.type:
                    type_copies += 1
        expected = sum(1 for _ in ds.data.match(None, RDF.type, None))
        assert type_copies == expected

    def test_deterministic(self, lubm_file, tmp_path):
        _, path = lubm_file
        r1 = stream_partition(path, tmp_path / "a", k=3)
        r2 = stream_partition(path, tmp_path / "b", k=3)
        assert r1.triples_per_partition == r2.triples_per_partition


class TestStreamDomain:
    def test_groups_stay_together(self, lubm_file, tmp_path):
        ds, path = lubm_file
        report = stream_partition(
            path, tmp_path / "out", k=3, group_of=ds.domain_grouper
        )
        # Each university's resources land on a single partition, so the
        # replication is (near) zero beyond the rare cross links.
        assert report.policy == "domain"
        assert report.replication < 1.1

    def test_domain_balances_by_running_count(self, lubm_file, tmp_path):
        ds, path = lubm_file
        report = stream_partition(
            path, tmp_path / "out", k=3, group_of=ds.domain_grouper
        )
        counts = report.triples_per_partition
        assert max(counts) <= 3 * max(1, min(counts))


class TestErrors:
    def test_malformed_strict_raises(self, tmp_path):
        bad = tmp_path / "bad.nt"
        bad.write_text("<ex:a> <ex:p> <ex:b> .\nBROKEN LINE\n", encoding="utf-8")
        with pytest.raises(Exception):
            stream_partition(bad, tmp_path / "out", k=2)

    def test_malformed_lenient_skips(self, tmp_path):
        bad = tmp_path / "bad.nt"
        bad.write_text("<ex:a> <ex:p> <ex:b> .\nBROKEN LINE\n", encoding="utf-8")
        report = stream_partition(bad, tmp_path / "out", k=2, strict=False)
        assert report.lines_skipped == 1
        assert report.triples_read == 1

    def test_invalid_k(self, tmp_path):
        src = tmp_path / "x.nt"
        src.write_text("", encoding="utf-8")
        with pytest.raises(ValueError):
            stream_partition(src, tmp_path / "out", k=0)

    def test_empty_file(self, tmp_path):
        src = tmp_path / "x.nt"
        src.write_text("", encoding="utf-8")
        report = stream_partition(src, tmp_path / "out", k=2)
        assert report.triples_read == 0
        assert report.replication == 1.0


class TestEquivalenceWithInMemory:
    def test_same_closure_after_parallel_reasoning(self, lubm_file, tmp_path):
        """Partition files produced by the streaming path drive the same
        parallel closure as the in-memory path."""
        from repro.owl import HorstReasoner
        from repro.owl.compiler import compile_ontology
        from repro.parallel.routing import DataPartitionRouter
        from repro.parallel.worker import PartitionWorker
        from repro.parallel.comm import InMemoryComm
        from repro.partitioning.base import HashOwner

        ds, path = lubm_file
        k = 3
        report = stream_partition(path, tmp_path / "out", k=k)
        crs = compile_ontology(ds.ontology)
        # The streaming hash owner is exactly HashOwner(k): rebuild the
        # router from it, load partition files as worker bases.
        owner = HashOwner(k)
        from repro.partitioning.data_generic import default_vocabulary

        vocab = default_vocabulary(ds.data)
        router = DataPartitionRouter(owner, vocabulary=frozenset(vocab))
        workers = [
            PartitionWorker(
                node_id=i,
                base=Graph(parse_ntriples(
                    report.partition_files[i].read_text(encoding="utf-8")
                )),
                rules=crs.rules,
                router=router,
            )
            for i in range(k)
        ]
        comm = InMemoryComm(k)
        results = [w.bootstrap() for w in workers]
        for r in results:
            for b in r.outgoing:
                comm.send(b)
        for _ in range(1000):
            if comm.pending() == 0:
                break
            results = [w.step(comm.recv_all(w.node_id)) for w in workers]
            for r in results:
                for b in r.outgoing:
                    comm.send(b)
        union = Graph()
        for w in workers:
            union.update(iter(w.output_graph()))

        serial = HorstReasoner(ds.ontology).materialize(ds.data)
        assert union == serial.graph
