"""Shared fixtures: small ontologies and datasets every test layer uses."""

from __future__ import annotations

import pytest

from repro.owl.vocabulary import OWL, RDF, RDFS
from repro.rdf import Graph, Namespace, URI

EX = Namespace("http://example.org/test#")


@pytest.fixture
def ex():
    return EX


@pytest.fixture
def family_tbox() -> Graph:
    """A compact TBox touching every OWL-Horst construct the compiler
    handles: class/property hierarchy, domain/range, transitive, symmetric,
    inverse, and a someValuesFrom restriction."""
    g = Graph()
    g.add_spo(EX.Parent, RDFS.subClassOf, EX.Person)
    g.add_spo(EX.Grandparent, RDFS.subClassOf, EX.Parent)
    g.add_spo(EX.hasChild, RDFS.domain, EX.Parent)
    g.add_spo(EX.hasChild, RDFS.range, EX.Person)
    g.add_spo(EX.ancestorOf, RDF.type, OWL.TransitiveProperty)
    g.add_spo(EX.hasChild, RDFS.subPropertyOf, EX.ancestorOf)
    g.add_spo(EX.marriedTo, RDF.type, OWL.SymmetricProperty)
    g.add_spo(EX.hasChild, OWL.inverseOf, EX.hasParent)
    g.add_spo(EX.DogOwnerRestriction, OWL.onProperty, EX.owns)
    g.add_spo(EX.DogOwnerRestriction, OWL.someValuesFrom, EX.Dog)
    g.add_spo(EX.DogOwnerRestriction, RDFS.subClassOf, EX.DogOwner)
    return g


@pytest.fixture
def family_data() -> Graph:
    g = Graph()
    g.add_spo(EX.alice, EX.hasChild, EX.bob)
    g.add_spo(EX.bob, EX.hasChild, EX.carol)
    g.add_spo(EX.carol, EX.hasChild, EX.dave)
    g.add_spo(EX.alice, EX.marriedTo, EX.albert)
    g.add_spo(EX.alice, EX.owns, EX.rex)
    g.add_spo(EX.rex, RDF.type, EX.Dog)
    return g


@pytest.fixture
def chain_graph() -> Graph:
    """A 6-node transitive chain under EX.p."""
    g = Graph()
    for i in range(5):
        g.add_spo(URI(f"http://example.org/test#n{i}"), EX.p,
                  URI(f"http://example.org/test#n{i + 1}"))
    return g


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running integration tests"
    )
