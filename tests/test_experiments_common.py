"""Tests for the experiment harness internals (scales, serial baselines,
the speedup runner, fig4's sweep)."""

import pytest

from repro.experiments.common import (
    SCALES,
    build_dataset,
    measure_serial,
    speedup_series,
)
from repro.experiments.fig4 import collect_points
from repro.parallel.costmodel import CostModel


class TestScales:
    def test_three_presets(self):
        assert set(SCALES) == {"tiny", "small", "paper"}

    def test_cluster_counts_cover_max_k(self):
        """Each preset's datasets must have at least max(ks) natural
        clusters, or the partitioning experiments can't separate them."""
        for scale in SCALES.values():
            k_max = max(scale.ks)
            assert scale.lubm_universities >= min(k_max, 4)
            assert scale.mdc_fields >= min(k_max, 4)

    def test_paper_scale_reaches_16(self):
        assert 16 in SCALES["paper"].ks


class TestMeasureSerial:
    def test_returns_time_and_work(self):
        ds = build_dataset("lubm", SCALES["tiny"])
        elapsed, work = measure_serial(ds, "forward")
        assert elapsed > 0 and work > 0

    def test_work_deterministic(self):
        ds = build_dataset("lubm", SCALES["tiny"])
        _, w1 = measure_serial(ds, "forward")
        _, w2 = measure_serial(ds, "forward")
        assert w1 == w2


class TestSpeedupSeries:
    def test_k1_is_unity(self):
        ds = build_dataset("mdc", SCALES["tiny"])
        points = speedup_series(ds, (1, 2), strategy="forward",
                                cost_model=CostModel.zero())
        assert points[0].speedup == 1.0
        assert points[0].work_speedup == 1.0

    def test_zero_cost_model_isolates_reasoning(self):
        ds = build_dataset("mdc", SCALES["tiny"])
        free = speedup_series(ds, (1, 2), strategy="forward",
                              cost_model=CostModel.zero())[-1]
        file_ipc = speedup_series(ds, (1, 2), strategy="forward",
                                  cost_model=CostModel.file_ipc())[-1]
        # Same run content; the free-comm makespan cannot be larger by
        # more than measurement noise.
        assert free.work_speedup == file_ipc.work_speedup

    def test_rounds_recorded(self):
        ds = build_dataset("mdc", SCALES["tiny"])
        point = speedup_series(ds, (2,), strategy="forward")[-1]
        assert point.rounds >= 1
        assert point.run is not None


class TestFig4Sweep:
    def test_min_of_repeats_not_larger_than_single(self):
        scale = SCALES["tiny"]
        time_points, work_points = collect_points(scale, repeats=2)
        assert len(time_points) == len(scale.fig4_sizes)
        # Work is deterministic across repeats.
        _, work_again = collect_points(scale, repeats=1)
        assert [p.time for p in work_points] == [p.time for p in work_again]

    def test_sizes_monotone_in_nodes(self):
        time_points, _ = collect_points(SCALES["tiny"], repeats=1)
        sizes = [p.size for p in time_points]
        assert sizes == sorted(sizes)
