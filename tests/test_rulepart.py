"""Unit tests for Algorithm 2 (rule partitioning)."""

import pytest

from repro.datalog import parse_rules
from repro.owl.rules_horst import horst_raw_rules
from repro.partitioning import partition_rules
from repro.partitioning.rulepart import graph_workload_estimator
from repro.rdf import Graph, URI


def u(name):
    return URI(f"ex:{name}")


class TestPartitionRules:
    def test_covers_all_rules_exactly_once(self):
        rules = horst_raw_rules()
        result = partition_rules(rules, k=3)
        names = [r.name for subset in result.rule_sets for r in subset]
        assert sorted(names) == sorted(r.name for r in rules)

    def test_no_empty_partition(self):
        rules = horst_raw_rules()
        for k in (2, 3, 4, 5):
            result = partition_rules(rules, k=k)
            assert all(subset for subset in result.rule_sets)

    def test_k_exceeding_rule_count_rejected(self):
        rules = parse_rules(
            "@prefix ex: <ex:>\n[only: (?a ex:p ?b) -> (?b ex:p ?a)]"
        )
        with pytest.raises(ValueError):
            partition_rules(rules, k=2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            partition_rules(horst_raw_rules(), k=0)

    def test_coupled_rules_kept_together(self):
        """Strongly coupled producer/consumer pairs should land on the same
        node; an unrelated pair forms the natural second partition."""
        rules = parse_rules(
            "@prefix ex: <ex:>\n"
            "[p1: (?a ex:a ?b) -> (?a ex:b ?b)]"
            "[p2: (?a ex:b ?b) -> (?a ex:c ?b)]"
            "[q1: (?a ex:x ?b) -> (?a ex:y ?b)]"
            "[q2: (?a ex:y ?b) -> (?a ex:z ?b)]"
        )
        result = partition_rules(rules, k=2, seed=1)
        sets = [sorted(r.name for r in s) for s in result.rule_sets]
        assert sorted(sets) == [["p1", "p2"], ["q1", "q2"]]
        assert result.edge_cut == 0

    def test_edge_weighting_changes_cut_priority(self):
        # One heavy producer/consumer pair, one light; at k=2 with one cut
        # forced among 3 chained rules, the light edge should be the cut.
        rules = parse_rules(
            "@prefix ex: <ex:>\n"
            "[heavy1: (?a ex:a ?b) -> (?a ex:hot ?b)]"
            "[heavy2: (?a ex:hot ?b) -> (?a ex:c ?b)]"
            "[light: (?a ex:c ?b) -> (?a ex:cold ?b)]"
        )
        stats = {u("hot"): 1000, u("c"): 1}
        result = partition_rules(rules, k=2, predicate_stats=stats, seed=0)
        sets = [sorted(r.name for r in s) for s in result.rule_sets]
        assert ["heavy1", "heavy2"] in sets


class TestWorkloadEstimator:
    def test_selectivity_uses_ground_positions(self):
        g = Graph()
        for i in range(10):
            g.add_spo(u(f"s{i}"), u("type"), u("Course"))
        g.add_spo(u("x"), u("type"), u("Rare"))
        estimator = graph_workload_estimator(g)
        rules = parse_rules(
            "@prefix ex: <ex:>\n"
            "[course: (?s ex:type ex:Course) -> (?s ex:isCourse ex:Course)]"
            "[rare: (?s ex:type ex:Rare) -> (?s ex:isRare ex:Rare)]"
        )
        assert estimator(rules[0]) > estimator(rules[1])

    def test_recursive_rules_weighted_heavier(self):
        g = Graph()
        for i in range(10):
            g.add_spo(u(f"n{i}"), u("p"), u(f"n{i + 1}"))
            g.add_spo(u(f"n{i}"), u("q"), u(f"n{i + 1}"))
        estimator = graph_workload_estimator(g)
        rules = parse_rules(
            "@prefix ex: <ex:>\n"
            "[trans: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]"
            "[flat: (?a ex:q ?b) (?b ex:q ?c) -> (?a ex:flat ?c)]"
        )
        assert estimator(rules[0]) > estimator(rules[1])
