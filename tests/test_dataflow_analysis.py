"""The ST300-series store-invariant verifier (repro.analysis.dataflow).

Two layers of coverage:

* **clean tree** — the live sources carry no findings, and the preflight /
  CLI surfaces include the pass;
* **drift injection** — every rule is proven to fire by feeding
  :func:`verify_stores` a mutated copy of the real module source (the
  ``sources`` override), re-introducing exactly the defect class the rule
  exists to catch.  These are the regression tests the issue asks for:
  deleting an invalidation, bumping nothing, writing tombstones off the
  blessed path, or renaming a spec'd method must turn the build red.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis.dataflow import (
    STORE_SPECS,
    STRIPE_RULES,
    CacheRule,
    StateRule,
    StoreSpec,
    VersionRule,
    store_spec_table,
    verify_stores,
)
from repro.analysis.protocol import module_source

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "dataflow"


def codes(findings):
    return sorted({f.code for f in findings})


# -- the clean tree -----------------------------------------------------------


def test_live_tree_is_clean():
    assert verify_stores() == []


def test_every_spec_names_a_real_class():
    """ST305's own precondition: the spec'd modules and classes exist."""
    for spec in STORE_SPECS:
        assert spec.cls in module_source(spec.module)


# -- drift injection: ST300 (mutation without invalidation/bump) --------------


def test_st300_removed_cache_invalidation_is_caught():
    ids = module_source("repro.rdf.idstore")
    drifted = ids.replace(
        "        self._views.clear()\n        self._tail_views.clear()\n", ""
    )
    assert drifted != ids
    findings = verify_stores(sources={"repro.rdf.idstore": drifted})
    assert "ST300" in codes(findings)
    assert any("delete_rows" in f.message for f in findings)


def test_st300_removed_version_bump_is_caught():
    g = module_source("repro.rdf.graph")
    drifted = g.replace(
        "        self._size += 1\n        self._version += 1\n",
        "        self._size += 1\n",
        1,
    )
    assert drifted != g
    findings = verify_stores(sources={"repro.rdf.graph": drifted})
    assert "ST300" in codes(findings)
    assert any("_version" in f.message for f in findings)


# -- drift injection: ST301 (cache read without staleness guard) --------------


def test_st301_weakened_guard_is_caught():
    ids = module_source("repro.rdf.idstore")
    drifted = ids.replace(
        "if cached is None or cached[2] != self._n:", "if cached is None:"
    )
    assert drifted != ids
    findings = verify_stores(sources={"repro.rdf.idstore": drifted})
    assert "ST301" in codes(findings)


def test_st301_undeclared_cache_reader_is_caught():
    ids = module_source("repro.rdf.idstore")
    drifted = ids.replace(
        "    def memory_bytes",
        "    def peek(self):\n        return self._views\n\n"
        "    def memory_bytes",
        1,
    )
    assert drifted != ids
    findings = verify_stores(sources={"repro.rdf.idstore": drifted})
    assert "ST301" in codes(findings)
    assert any("peek" in f.message for f in findings)


# -- drift injection: ST302 (tombstone write off the blessed path) ------------


def test_st302_rogue_tombstone_write_is_caught():
    runs = module_source("repro.rdf.runstore")
    drifted = runs.replace(
        "    def _next_serial",
        "    def purge_hack(self, s, p, o):\n"
        "        self._tombs.add_rows(s, p, o)\n\n"
        "    def _next_serial",
        1,
    )
    assert drifted != runs
    findings = verify_stores(sources={"repro.rdf.runstore": drifted})
    assert "ST302" in codes(findings)
    assert any("purge_hack" in f.message for f in findings)


# -- drift injection: ST303 (stripe arithmetic outside the dictionary) --------


def test_st303_stripe_arithmetic_in_worker_is_caught():
    w = module_source("repro.parallel.worker")
    drifted = w + (
        "\n\ndef _mint(base_size, j, k, node_id):\n"
        "    return base_size + j * k + node_id\n"
    )
    findings = verify_stores(sources={"repro.parallel.worker": drifted})
    assert "ST303" in codes(findings)


def test_st303_blessed_minting_site_stays_clean():
    # The canonical site (PartitionDictionary.encode) is allowed.
    assert not [f for f in verify_stores() if f.code == "ST303"]
    assert any(r.allowed for r in STRIPE_RULES)


# -- drift injection: ST304 (writes bypassing the mutation API) ---------------


def test_st304_direct_column_write_is_caught():
    ids = module_source("repro.rdf.idstore")
    drifted = ids.replace(
        "    def memory_bytes",
        "    def hack(self, v):\n        self._n = v\n\n"
        "    def memory_bytes",
        1,
    )
    assert drifted != ids
    findings = verify_stores(sources={"repro.rdf.idstore": drifted})
    assert "ST304" in codes(findings)
    assert any("hack" in f.message for f in findings)


def test_st304_foreign_write_from_consumer_is_caught():
    eng = module_source("repro.datalog.engine")
    drifted = eng + "\n\ndef _hack(store):\n    store._n = 0\n"
    findings = verify_stores(sources={"repro.datalog.engine": drifted})
    assert "ST304" in codes(findings)


# -- drift injection: ST305 (spec/source drift fails loudly) ------------------


def test_st305_renamed_method_fails_loudly():
    ids = module_source("repro.rdf.idstore")
    drifted = ids.replace("def add_rows", "def add_rows_v2")
    assert drifted != ids
    findings = verify_stores(sources={"repro.rdf.idstore": drifted})
    assert "ST305" in codes(findings)


def test_st305_unparseable_module_fails_loudly():
    findings = verify_stores(sources={"repro.rdf.idstore": "def broken(:\n"})
    assert codes(findings) == ["ST305"]


# -- fixture stores (files on disk, custom specs) -----------------------------


def _fixture_spec_nobump():
    return StoreSpec(
        module="tests.fixtures.dataflow.bad_store_nobump",
        cls="TinyStore",
        state=(StateRule("_rows", frozenset({"add", "remove"})),),
        versions=(VersionRule("_version", frozenset({"add", "remove"})),),
    )


def _fixture_spec_staleread():
    return StoreSpec(
        module="tests.fixtures.dataflow.bad_store_staleread",
        cls="TinyCachedStore",
        state=(StateRule("_rows", frozenset({"add"})),
               StateRule("_n", frozenset({"add"}))),
        caches=(CacheRule(
            attr="_view_cache",
            invalidators=frozenset({"add"}),
            readers=frozenset({"view"}),
            guard="_n",
            writers=frozenset({"add", "rebuild"}),
        ),),
    )


def _verify_fixture(spec, filename):
    src = (FIXTURES / filename).read_text(encoding="utf-8")
    return verify_stores(
        specs=(spec,), stripe_rules=(), sources={spec.module: src}
    )


def test_fixture_store_missing_bump_flags_st300():
    findings = _verify_fixture(_fixture_spec_nobump(), "bad_store_nobump.py")
    assert "ST300" in codes(findings)
    assert any("remove" in f.message and "_version" in f.message
               for f in findings)


def test_fixture_store_stale_read_flags_st301():
    findings = _verify_fixture(
        _fixture_spec_staleread(), "bad_store_staleread.py"
    )
    assert "ST301" in codes(findings)
    assert any("view" in f.message for f in findings)


# -- surfaces: spec table and the CLI -----------------------------------------


def test_store_spec_table_lists_every_store():
    table = store_spec_table()
    for spec in STORE_SPECS:
        assert spec.cls in table


def _run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        timeout=120,
    )


def test_cli_store_spec_flag():
    proc = _run_cli("--store-spec")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "IdGraph" in proc.stdout and "RunStore" in proc.stdout


def test_cli_runs_dataflow_pass():
    proc = _run_cli("--format=json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert "dataflow" in payload["passes"]
