"""Unit tests for the worker loop, the synchronous driver, the cost models,
and the simulated cluster."""

import pytest

from repro.datalog import parse_rules
from repro.owl import HorstReasoner
from repro.owl.vocabulary import OWL, RDF, RDFS
from repro.parallel import (
    BroadcastRouter,
    CostModel,
    FileComm,
    ParallelReasoner,
    PartitionWorker,
    SimulatedCluster,
)
from repro.partitioning.policies import HashPartitioningPolicy
from repro.rdf import Graph, Triple, URI


def u(name):
    return URI(f"ex:{name}")


TRANS_RULES = parse_rules(
    "@prefix ex: <ex:>\n[t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]"
)


@pytest.fixture
def tbox():
    g = Graph()
    g.add_spo(u("partOf"), RDF.type, OWL.TransitiveProperty)
    g.add_spo(u("Sub"), RDFS.subClassOf, u("Super"))
    return g


@pytest.fixture
def chain_data():
    g = Graph()
    for i in range(8):
        g.add_spo(u(f"n{i}"), u("partOf"), u(f"n{i + 1}"))
    g.add_spo(u("n0"), RDF.type, u("Sub"))
    return g


class TestPartitionWorker:
    def test_bootstrap_derives_and_routes(self):
        base = Graph()
        base.add_spo(u("a"), u("p"), u("b"))
        base.add_spo(u("b"), u("p"), u("c"))
        worker = PartitionWorker(0, base, TRANS_RULES, BroadcastRouter(2))
        result = worker.bootstrap()
        assert result.derived == 1
        assert result.sent_tuples == 1
        assert result.outgoing[0].dest == 1

    def test_step_ingests_and_extends(self):
        base = Graph()
        base.add_spo(u("a"), u("p"), u("b"))
        worker = PartitionWorker(0, base, TRANS_RULES, BroadcastRouter(2))
        worker.bootstrap()
        from repro.parallel import TupleBatch

        incoming = TupleBatch.make(1, 0, 0, [Triple(u("b"), u("p"), u("c"))])
        result = worker.step([incoming])
        assert result.received == 1
        assert Triple(u("a"), u("p"), u("c")) in worker.output_graph()

    def test_no_duplicate_sends(self):
        base = Graph()
        base.add_spo(u("a"), u("p"), u("b"))
        base.add_spo(u("b"), u("p"), u("c"))
        worker = PartitionWorker(0, base, TRANS_RULES, BroadcastRouter(2))
        first = worker.bootstrap()
        from repro.parallel import TupleBatch

        # Re-delivering its own derivation must not cause a re-send.
        echo = TupleBatch.make(1, 0, 0, list(first.outgoing[0].triples))
        result = worker.step([echo])
        assert result.sent_tuples == 0

    def test_empty_step_is_cheap(self):
        worker = PartitionWorker(0, Graph(), TRANS_RULES, BroadcastRouter(2))
        worker.bootstrap()
        result = worker.step([])
        assert result.work == 0 and result.derived == 0

    def test_schema_replicated_to_worker(self, tbox):
        worker = PartitionWorker(
            0, Graph(), TRANS_RULES, BroadcastRouter(2), schema=tbox
        )
        assert len(worker.output_graph()) == len(tbox)


class TestParallelReasonerDriver:
    def test_matches_serial_closure(self, tbox, chain_data):
        serial = HorstReasoner(tbox).materialize(chain_data)
        pr = ParallelReasoner(tbox, k=3, approach="data")
        result = pr.materialize(chain_data)
        instance = Graph(t for t in result.graph if t not in pr.compiled.schema)
        assert instance == serial.graph

    def test_rule_approach_matches_serial(self, tbox, chain_data):
        serial = HorstReasoner(tbox).materialize(chain_data)
        pr = ParallelReasoner(tbox, k=2, approach="rule")
        result = pr.materialize(chain_data)
        instance = Graph(t for t in result.graph if t not in pr.compiled.schema)
        assert instance == serial.graph

    def test_file_comm_backend(self, tbox, chain_data, tmp_path):
        serial = HorstReasoner(tbox).materialize(chain_data)
        pr = ParallelReasoner(
            tbox, k=2, approach="data", comm=FileComm(2, tmp_path)
        )
        result = pr.materialize(chain_data)
        instance = Graph(t for t in result.graph if t not in pr.compiled.schema)
        assert instance == serial.graph

    def test_stats_recorded_per_round(self, tbox, chain_data):
        pr = ParallelReasoner(tbox, k=2, approach="data")
        result = pr.materialize(chain_data)
        assert result.stats.num_rounds >= 1
        for round_stats in result.stats.rounds:
            assert len(round_stats) == 2

    def test_received_bytes_match_sent(self, tbox, chain_data):
        pr = ParallelReasoner(tbox, k=3, approach="data")
        result = pr.materialize(chain_data)
        sent = sum(s.sent_bytes for r in result.stats.rounds for s in r)
        received = sum(s.received_bytes for r in result.stats.rounds for s in r)
        # Last round's sends are never received (termination) — but the
        # last round sends nothing, so totals match.
        assert sent == received

    def test_node_outputs_union_is_result(self, tbox, chain_data):
        pr = ParallelReasoner(tbox, k=2, approach="data")
        result = pr.materialize(chain_data)
        union = Graph()
        for g in result.node_outputs:
            union.update(iter(g))
        for t in union:
            assert t in result.graph

    def test_invalid_approach(self, tbox):
        with pytest.raises(ValueError):
            ParallelReasoner(tbox, k=2, approach="bogus")

    def test_invalid_k(self, tbox):
        with pytest.raises(ValueError):
            ParallelReasoner(tbox, k=0)

    def test_k1_works(self, tbox, chain_data):
        serial = HorstReasoner(tbox).materialize(chain_data)
        pr = ParallelReasoner(tbox, k=1, approach="data")
        result = pr.materialize(chain_data)
        instance = Graph(t for t in result.graph if t not in pr.compiled.schema)
        assert instance == serial.graph
        assert result.stats.total_tuples_communicated() == 0


class TestCostModel:
    def test_transfer_time_formula(self):
        cm = CostModel("test", per_message_overhead=0.01, bandwidth=1000,
                       aggregation_bandwidth=1000)
        assert cm.transfer_time(500, 2) == pytest.approx(0.02 + 0.5)

    def test_zero_model_free(self):
        cm = CostModel.zero()
        assert cm.transfer_time(10**9, 10**6) == 0.0
        assert cm.aggregation_time(10**9) == 0.0

    def test_negative_traffic_rejected(self):
        with pytest.raises(ValueError):
            CostModel.mpi().transfer_time(-1, 0)

    def test_preset_ordering(self):
        """file IPC >> MPI >> shared memory for the same traffic."""
        traffic = (10**6, 100)
        file_t = CostModel.file_ipc().transfer_time(*traffic)
        mpi_t = CostModel.mpi().transfer_time(*traffic)
        shm_t = CostModel.shared_memory().transfer_time(*traffic)
        assert file_t > mpi_t > shm_t


class TestSimulatedCluster:
    def test_breakdown_components_nonnegative(self, tbox, chain_data):
        pr = ParallelReasoner(tbox, k=2, approach="data")
        run = SimulatedCluster(pr, CostModel.file_ipc()).run(chain_data)
        b = run.breakdown()
        assert b.reasoning >= 0 and b.io >= 0 and b.sync >= 0
        assert b.total == pytest.approx(b.reasoning + b.io + b.sync + b.aggregation)

    def test_makespan_at_least_aggregation(self, tbox, chain_data):
        pr = ParallelReasoner(tbox, k=2, approach="data")
        run = SimulatedCluster(pr, CostModel.file_ipc()).run(chain_data)
        assert run.makespan >= run.aggregation_time

    def test_async_not_slower(self, tbox, chain_data):
        # Reconstruct both timelines from the same measured run, so the
        # comparison is exact rather than wall-clock-noise-dependent.
        pr = ParallelReasoner(tbox, k=3, approach="data")
        result = pr.materialize(chain_data)
        sync_run = SimulatedCluster(pr, CostModel.file_ipc(),
                                    mode="sync").reconstruct(result)
        async_run = SimulatedCluster(pr, CostModel.file_ipc(),
                                     mode="async").reconstruct(result)
        assert async_run.makespan <= sync_run.makespan + 1e-9

    def test_reconstruct_is_replayable(self, tbox, chain_data):
        pr = ParallelReasoner(tbox, k=2, approach="data")
        result = pr.materialize(chain_data)
        run_file = SimulatedCluster(pr, CostModel.file_ipc()).reconstruct(result)
        run_mpi = SimulatedCluster(pr, CostModel.mpi()).reconstruct(result)
        assert max(run_mpi.per_node_io) <= max(run_file.per_node_io)

    def test_invalid_mode(self, tbox):
        with pytest.raises(ValueError):
            SimulatedCluster(ParallelReasoner(tbox, k=2), mode="warp")

    def test_work_makespan_positive(self, tbox, chain_data):
        pr = ParallelReasoner(tbox, k=2, approach="data")
        run = SimulatedCluster(pr).run(chain_data)
        assert run.work_makespan > 0
