"""Tests of the experiment harness at tiny scale: every table/figure module
runs, produces well-formed rows, and satisfies its paper-shape assertions
where those are stable at tiny sizes."""

import pytest

from repro.experiments import EXPERIMENTS, SCALES, build_dataset
from repro.experiments.common import ExperimentResult


@pytest.fixture(scope="module")
def tiny_results():
    """Run each experiment once at tiny scale (cached for all tests)."""
    return {name: run(scale="tiny") for name, run in EXPERIMENTS.items()}


class TestHarness:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "table1",
            "ablations", "queries",
        }

    @pytest.mark.parametrize("name", sorted(
        ["fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "table1",
         "ablations", "queries"]
    ))
    def test_result_well_formed(self, tiny_results, name):
        result = tiny_results[name]
        assert isinstance(result, ExperimentResult)
        assert result.rows, f"{name} produced no rows"
        for row in result.rows:
            assert len(row) == len(result.headers)
        rendered = result.render()
        assert result.headers[0] in rendered
        csv = result.to_csv()
        assert csv.count("\n") == len(result.rows)

    def test_build_dataset_names(self):
        scale = SCALES["tiny"]
        for name in ("lubm", "uobm", "mdc"):
            ds = build_dataset(name, scale)
            assert len(ds.data) > 0
        with pytest.raises(ValueError):
            build_dataset("nope", scale)


class TestShapes:
    def test_fig1_mdc_beats_uobm(self, tiny_results):
        result = tiny_results["fig1"]
        by = {(r[0].split("-")[0], r[1]): r for r in result.rows}
        k = max(r[1] for r in result.rows)
        mdc_work = by[("MDC", k)][5]
        uobm_work = by[("UOBM", k)][5]
        assert mdc_work > uobm_work

    def test_fig2_reasoning_decreases(self, tiny_results):
        result = tiny_results["fig2"]
        reasoning = result.column("reasoning")
        assert reasoning[-1] < reasoning[0]

    def test_fig3_measured_below_theory(self, tiny_results):
        result = tiny_results["fig3"]
        for row in result.rows:
            k, work_measured, work_theory = row[0], row[4], row[5]
            if k == 1:
                continue
            assert work_measured <= work_theory * 1.1

    def test_fig4_good_fit(self, tiny_results):
        result = tiny_results["fig4"]
        # R² is embedded in the notes; reparse.
        note = next(n for n in result.notes if n.startswith("work model"))
        r2 = float(note.split("R² = ")[1].rstrip(")"))
        assert r2 > 0.99

    def test_fig5_hash_worst(self, tiny_results):
        result = tiny_results["fig5"]
        k = max(r[1] for r in result.rows)
        ir = {r[0]: r[3] for r in result.rows if r[1] == k}
        assert ir["hash"] > ir["graph"]
        assert ir["hash"] > ir["domain"]

    def test_fig6_subset_gains(self, tiny_results):
        result = tiny_results["fig6"]
        k_max = max(r[1] for r in result.rows)
        for row in result.rows:
            if row[1] == k_max:
                assert row[5] >= 1.0  # work_speedup

    def test_table1_hash_replicates_most(self, tiny_results):
        result = tiny_results["table1"]
        for k in {r[0] for r in result.rows}:
            ir = {r[1]: r[4] for r in result.rows if r[0] == k}
            assert ir["hash"] > ir["graph"]

    def test_ablations_expected_orderings(self, tiny_results):
        result = tiny_results["ablations"]

        def value(dimension, variant_prefix):
            return next(
                r[3]
                for r in result.rows
                if r[0] == dimension and str(r[1]).startswith(variant_prefix)
            )

        assert value("comm", "file-ipc") > value("comm", "mpi") >= value(
            "comm", "shared-memory"
        )
        assert value("rounds", "async") <= value("rounds", "sync") + 1e-9
        assert value("routing", "owner-table") < value("routing", "broadcast")
        assert value("strategy", "backward") > 10 * value("strategy", "forward")


class TestCLI:
    def test_cli_runs_one_experiment(self, capsys):
        from repro.experiments.cli import main

        assert main(["table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_cli_writes_csv(self, tmp_path, capsys):
        from repro.experiments.cli import main

        path = tmp_path / "out.csv"
        assert main(["table1", "--scale", "tiny", "--csv", str(path)]) == 0
        content = path.read_text()
        assert content.startswith("k,policy")
