"""Unit tests for the semi-naive engine (with the naive engine as oracle)."""

import pytest

from repro.datalog import NaiveEngine, SemiNaiveEngine, parse_rules
from repro.rdf import Graph, Literal, Triple, URI

PREFIX = "@prefix ex: <ex:>\n"
TRANS = parse_rules(PREFIX + "[t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]")


def chain(n, pred="ex:p"):
    g = Graph()
    for i in range(n):
        g.add_spo(URI(f"ex:n{i}"), URI(pred), URI(f"ex:n{i + 1}"))
    return g


class TestFixpoint:
    def test_transitive_chain_closure_size(self):
        g = chain(5)
        SemiNaiveEngine(TRANS).run(g)
        # closure of a 6-node path: C(6,2) = 15 pairs
        assert len(g) == 15

    def test_inferred_excludes_base(self):
        g = chain(3)
        result = SemiNaiveEngine(TRANS).run(g)
        assert len(result.inferred) == len(g) - 3

    def test_cycle_terminates(self):
        g = chain(3)
        g.add_spo(URI("ex:n3"), URI("ex:p"), URI("ex:n0"))
        SemiNaiveEngine(TRANS).run(g)
        assert len(g) == 16  # complete digraph on 4 nodes incl self-loops

    def test_empty_graph(self):
        g = Graph()
        result = SemiNaiveEngine(TRANS).run(g)
        assert len(g) == 0 and result.stats.derived == 0

    def test_no_applicable_rules(self):
        g = chain(3, pred="ex:unrelated")
        result = SemiNaiveEngine(TRANS).run(g)
        assert result.stats.derived == 0

    def test_matches_naive_oracle(self):
        rules = parse_rules(
            PREFIX
            + "[t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]"
            + "[s: (?a ex:p ?b) -> (?b ex:q ?a)]"
            + "[j: (?a ex:q ?b) (?b ex:q ?c) -> (?a ex:r ?c)]"
        )
        g1, g2 = chain(6), chain(6)
        SemiNaiveEngine(rules).run(g1)
        NaiveEngine(rules).run(g2)
        assert g1 == g2

    def test_semi_naive_does_less_work_than_naive(self):
        g1, g2 = chain(12), chain(12)
        semi = SemiNaiveEngine(TRANS).run(g1)
        naive = NaiveEngine(TRANS).run(g2)
        assert g1 == g2
        assert semi.stats.join_probes < naive.stats.join_probes

    def test_max_iterations_guard(self):
        g = chain(20)
        with pytest.raises(RuntimeError, match="fixpoint"):
            SemiNaiveEngine(TRANS, max_iterations=2).run(g)


class TestResumableDelta:
    def test_delta_resume_equals_from_scratch(self):
        base = chain(4)
        extra = [Triple(URI("ex:n4"), URI("ex:p"), URI("ex:n5")),
                 Triple(URI("ex:n5"), URI("ex:p"), URI("ex:n6"))]

        # From scratch over base+extra:
        full = chain(4)
        full.update(extra)
        SemiNaiveEngine(TRANS).run(full)

        # Incremental: fixpoint base, then resume with extra as delta.
        engine = SemiNaiveEngine(TRANS)
        engine.run(base)
        engine.run(base, delta=extra)
        assert base == full

    def test_delta_with_already_known_triples_is_noop(self):
        g = chain(4)
        engine = SemiNaiveEngine(TRANS)
        engine.run(g)
        before = len(g)
        result = engine.run(g, delta=[Triple(URI("ex:n0"), URI("ex:p"), URI("ex:n1"))])
        assert len(g) == before
        assert result.stats.derived == 0

    def test_empty_delta_terminates_immediately(self):
        g = chain(4)
        engine = SemiNaiveEngine(TRANS)
        engine.run(g)
        result = engine.run(g, delta=[])
        assert result.stats.iterations == 0


class TestGeneralizedTriples:
    def test_literal_subject_derivation_dropped(self):
        # (?o type C) with o a literal must be skipped, not crash.
        rules = parse_rules(PREFIX + "[r: (?s ex:p ?o) -> (?o ex:t ?s)]")
        g = Graph([Triple(URI("ex:a"), URI("ex:p"), Literal("lit"))])
        result = SemiNaiveEngine(rules).run(g)
        assert result.stats.derived == 0

    def test_naive_engine_also_drops(self):
        rules = parse_rules(PREFIX + "[r: (?s ex:p ?o) -> (?o ex:t ?s)]")
        g = Graph([Triple(URI("ex:a"), URI("ex:p"), Literal("lit"))])
        result = NaiveEngine(rules).run(g)
        assert result.stats.derived == 0


class TestStats:
    def test_work_counter_positive(self):
        g = chain(5)
        result = SemiNaiveEngine(TRANS).run(g)
        assert result.stats.work > 0
        assert result.stats.work == result.stats.join_probes + result.stats.firings

    def test_merge(self):
        from repro.datalog.engine import EngineStats

        a = EngineStats(iterations=1, firings=2, derived=3, join_probes=4)
        b = EngineStats(iterations=10, firings=20, derived=30, join_probes=40)
        a.merge(b)
        assert (a.iterations, a.firings, a.derived, a.join_probes) == (11, 22, 33, 44)
