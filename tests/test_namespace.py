"""Unit tests for Namespace and schema-vocabulary classification."""

import pytest

from repro.owl.vocabulary import OWL, RDF, RDFS, is_schema_triple
from repro.rdf import Namespace, Triple, URI


class TestNamespace:
    def test_attribute_access(self):
        ns = Namespace("http://x.org/ns#")
        assert ns.Thing == URI("http://x.org/ns#Thing")

    def test_item_access_for_non_identifiers(self):
        ns = Namespace("http://x.org/ns#")
        assert ns["sub-class"] == URI("http://x.org/ns#sub-class")

    def test_contains(self):
        ns = Namespace("http://x.org/ns#")
        assert ns.Thing in ns
        assert URI("http://elsewhere/")  not in ns

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            Namespace("")

    def test_equality_and_hash(self):
        assert Namespace("a:") == Namespace("a:")
        assert len({Namespace("a:"), Namespace("a:")}) == 1

    def test_underscore_attributes_raise(self):
        with pytest.raises(AttributeError):
            Namespace("a:")._private

    def test_well_known_namespaces(self):
        assert RDF.type.value.endswith("#type")
        assert RDFS.subClassOf.value.endswith("#subClassOf")
        assert OWL.sameAs.value.endswith("#sameAs")


class TestSchemaClassification:
    def test_subclassof_is_schema(self):
        t = Triple(URI("ex:A"), RDFS.subClassOf, URI("ex:B"))
        assert is_schema_triple(t)

    def test_instance_type_is_not_schema(self):
        t = Triple(URI("ex:alice"), RDF.type, URI("ex:Student"))
        assert not is_schema_triple(t)

    def test_property_characteristic_is_schema(self):
        t = Triple(URI("ex:p"), RDF.type, OWL.TransitiveProperty)
        assert is_schema_triple(t)

    def test_restriction_definition_is_schema(self):
        t = Triple(URI("ex:R"), OWL.onProperty, URI("ex:p"))
        assert is_schema_triple(t)

    def test_plain_instance_triple_is_not_schema(self):
        t = Triple(URI("ex:a"), URI("ex:p"), URI("ex:b"))
        assert not is_schema_triple(t)

    def test_vocabulary_subject_is_schema(self):
        t = Triple(RDFS.subClassOf, URI("ex:anything"), URI("ex:x"))
        assert is_schema_triple(t)
