"""Unit tests for messages, communication backends, and routers."""

import pytest

import numpy as np

from repro.datalog import parse_rules
from repro.owl.vocabulary import RDF
from repro.parallel import (
    BroadcastRouter,
    DataPartitionRouter,
    EncodedBatch,
    FileComm,
    InMemoryComm,
    RulePartitionRouter,
    TupleBatch,
)
from repro.parallel.messages import DELTA_ENTRY_OVERHEAD, ROW_BYTES
from repro.partitioning.base import TableOwner
from repro.rdf import Graph, Literal, PartitionDictionary, TermDictionary, Triple, URI


def u(name):
    return URI(f"ex:{name}")


def batch(sender=0, dest=1, round_no=0, n=3):
    triples = [Triple(u(f"s{i}"), u("p"), u(f"o{i}")) for i in range(n)]
    return TupleBatch.make(sender, dest, round_no, triples)


class TestTupleBatch:
    def test_len(self):
        assert len(batch(n=5)) == 5

    def test_payload_bytes_matches_serialization(self):
        b = batch()
        assert b.payload_bytes() == len(b.serialize())

    def test_serialize_parse_round_trip(self):
        from repro.rdf import parse_ntriples

        b = batch()
        assert set(parse_ntriples(b.serialize())) == set(b.triples)

    def test_serialization_is_cached(self):
        b = batch()
        # Identity, not equality: the second call must return the object
        # computed by the first, proving payload_bytes() is O(1) after it.
        assert b.serialize() is b.serialize()

    def test_cache_invisible_to_equality(self):
        a, b = batch(), batch()
        a.serialize()
        assert a == b


class TestEncodedBatch:
    def _dictionary(self):
        base = TermDictionary()
        for t in (u("s"), u("p"), u("o")):
            base.encode(t)
        return PartitionDictionary(base, node_id=0, k=2)

    def test_make_and_len(self):
        b = EncodedBatch.make(0, 1, 0, [(0, 1, 2), (2, 1, 0)])
        assert len(b) == 2
        assert b.rows() == [(0, 1, 2), (2, 1, 0)]

    def test_empty_batch(self):
        b = EncodedBatch.make(0, 1, 0, [])
        assert len(b) == 0
        assert b.payload_bytes() == 0

    def test_payload_formula(self):
        term = u("freshly-minted")
        b = EncodedBatch.make(0, 1, 0, [(0, 1, 3), (3, 1, 2)], delta=[(3, term)])
        expected = 2 * ROW_BYTES + DELTA_ENTRY_OVERHEAD + len(term.n3().encode())
        assert b.payload_bytes() == expected

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            EncodedBatch(
                0, 1, 0,
                np.array([0], dtype=np.int64),
                np.array([0, 1], dtype=np.int64),
                np.array([0], dtype=np.int64),
            )

    def test_decode_round_trip(self):
        pd = self._dictionary()
        b = EncodedBatch.make(0, 1, 0, [(0, 1, 2)])
        assert b.decode(pd) == [Triple(u("s"), u("p"), u("o"))]

    def test_decode_applies_delta_first(self):
        sender = self._dictionary()
        minted = sender.encode(u("new"))
        receiver = self._dictionary()
        b = EncodedBatch.make(
            0, 1, 0, [(0, 1, minted)], delta=[(minted, u("new"))]
        )
        assert b.decode(receiver) == [Triple(u("s"), u("p"), u("new"))]
        # The delta is now registered: a later batch on the same channel
        # may reference the id without re-shipping the term.
        later = EncodedBatch.make(0, 1, 1, [(minted, 1, 0)])
        assert later.decode(receiver) == [Triple(u("new"), u("p"), u("s"))]


class TestInMemoryComm:
    def test_send_recv(self):
        comm = InMemoryComm(2)
        comm.send(batch(dest=1))
        received = comm.recv_all(1)
        assert len(received) == 1
        assert comm.recv_all(1) == []

    def test_pending_tracks_in_transit(self):
        comm = InMemoryComm(3)
        comm.send(batch(dest=1))
        comm.send(batch(dest=2))
        assert comm.pending() == 2
        comm.recv_all(1)
        assert comm.pending() == 1

    def test_stats_accounting(self):
        comm = InMemoryComm(2)
        b = batch(dest=1)
        comm.send(b)
        assert comm.stats.messages == 1
        assert comm.stats.tuples == 3
        assert comm.stats.payload_bytes == b.payload_bytes()
        assert comm.stats.sent_bytes[0] == b.payload_bytes()
        assert comm.stats.received_bytes[1] == b.payload_bytes()

    def test_destination_out_of_range(self):
        with pytest.raises(ValueError):
            InMemoryComm(2).send(batch(dest=5))

    def test_accepts_encoded_batches(self):
        comm = InMemoryComm(2)
        b = EncodedBatch.make(0, 1, 0, [(0, 1, 2)], delta=[(3, u("fresh"))])
        comm.send(b)
        assert comm.recv_all(1) == [b]
        assert comm.stats.tuples == 1
        assert comm.stats.payload_bytes == b.payload_bytes()


class TestFileComm:
    def test_send_recv_round_trip(self, tmp_path):
        comm = FileComm(2, tmp_path)
        sent = batch(dest=1)
        comm.send(sent)
        assert comm.pending() == 1
        received = comm.recv_all(1)
        assert len(received) == 1
        assert set(received[0].triples) == set(sent.triples)
        assert received[0].sender == 0
        assert received[0].round_no == 0
        assert comm.pending() == 0

    def test_only_destination_receives(self, tmp_path):
        comm = FileComm(3, tmp_path)
        comm.send(batch(dest=1))
        comm.send(batch(dest=2))
        assert len(comm.recv_all(1)) == 1
        assert len(comm.recv_all(2)) == 1
        assert comm.recv_all(0) == []

    def test_files_deleted_on_receipt(self, tmp_path):
        comm = FileComm(2, tmp_path)
        comm.send(batch(dest=1))
        comm.recv_all(1)
        assert list(tmp_path.glob("*.nt")) == []

    def test_literals_survive_file_transport(self, tmp_path):
        comm = FileComm(2, tmp_path)
        triples = [Triple(u("a"), u("p"), Literal('tricky "str"\n', language=None))]
        comm.send(TupleBatch.make(0, 1, 0, triples))
        received = comm.recv_all(1)
        assert list(received[0].triples) == triples

    def test_rejects_encoded_batches(self, tmp_path):
        comm = FileComm(2, tmp_path)
        with pytest.raises(TypeError):
            comm.send(EncodedBatch.make(0, 1, 0, [(0, 1, 2)]))


class TestDataPartitionRouter:
    def test_routes_to_owner_of_both_ends(self):
        owner = TableOwner(3, {u("a"): 0, u("b"): 2})
        router = DataPartitionRouter(owner)
        dests = router.destinations(1, Triple(u("a"), u("p"), u("b")))
        assert dests == [0, 2]

    def test_excludes_self(self):
        owner = TableOwner(3, {u("a"): 0, u("b"): 2})
        router = DataPartitionRouter(owner)
        assert router.destinations(0, Triple(u("a"), u("p"), u("b"))) == [2]

    def test_literal_objects_not_routed(self):
        owner = TableOwner(2, {u("a"): 0})
        router = DataPartitionRouter(owner)
        assert router.destinations(0, Triple(u("a"), u("p"), Literal("x"))) == []

    def test_vocabulary_objects_not_routed(self):
        owner = TableOwner(4, {u("a"): 0})
        router = DataPartitionRouter(owner, vocabulary=frozenset({u("Student")}))
        dests = router.destinations(0, Triple(u("a"), RDF.type, u("Student")))
        assert dests == []


class TestRulePartitionRouter:
    @pytest.fixture
    def rule_sets(self):
        rules = parse_rules(
            "@prefix ex: <ex:>\n"
            "[r0: (?a ex:p ?b) -> (?a ex:q ?b)]"
            "[r1: (?a ex:q ?b) -> (?a ex:r ?b)]"
        )
        return [[rules[0]], [rules[1]]]

    def test_routes_to_consuming_partition(self, rule_sets):
        router = RulePartitionRouter(rule_sets)
        t = Triple(u("x"), u("q"), u("y"))
        assert router.destinations(0, t) == [1]

    def test_no_match_no_destinations(self, rule_sets):
        router = RulePartitionRouter(rule_sets)
        t = Triple(u("x"), u("unrelated"), u("y"))
        assert router.destinations(0, t) == []

    def test_wildcard_predicate_bodies_match_everything(self):
        rules = parse_rules(
            "@prefix ex: <ex:>\n[w: (?a ?p ?b) (?b ?p ?c) -> (?a ?p ?c)]"
        )
        router = RulePartitionRouter([[], [rules[0]]])
        t = Triple(u("x"), u("whatever"), u("y"))
        assert router.destinations(0, t) == [1]


class TestBroadcastRouter:
    def test_everyone_but_self(self):
        router = BroadcastRouter(4)
        t = Triple(u("a"), u("p"), u("b"))
        assert router.destinations(2, t) == [0, 1, 3]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            BroadcastRouter(0)
