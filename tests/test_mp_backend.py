"""End-to-end tests of the real multiprocessing backend (small inputs;
see the module docstring of repro.parallel.mp_backend for why).

Parametrized over start methods: ``fork`` (Linux default) and ``spawn``
(macOS/Windows default) — the backend must be correct under both, since
spawn re-imports modules and re-interns every term from pickles.
"""

import multiprocessing as mp

import pytest

from repro.owl import HorstReasoner
from repro.owl.compiler import compile_ontology
from repro.owl.vocabulary import OWL, RDF
from repro.parallel.async_backend import run_multiprocess_async
from repro.parallel.mp_backend import run_multiprocess
from repro.partitioning import GraphPartitioningPolicy, partition_data, partition_rules
from repro.rdf import Graph, URI


def u(name):
    return URI(f"ex:{name}")


START_METHODS = [
    pytest.param(
        method,
        marks=pytest.mark.skipif(
            method not in mp.get_all_start_methods(),
            reason=f"start method {method!r} unavailable on this platform",
        ),
    )
    for method in ("fork", "spawn")
]


@pytest.fixture
def tbox():
    g = Graph()
    g.add_spo(u("partOf"), RDF.type, OWL.TransitiveProperty)
    g.add_spo(u("linkedTo"), RDF.type, OWL.SymmetricProperty)
    return g


@pytest.fixture
def data():
    g = Graph()
    for c in range(2):
        for i in range(6):
            g.add_spo(u(f"c{c}n{i}"), u("partOf"), u(f"c{c}n{i + 1}"))
    g.add_spo(u("c0n6"), u("partOf"), u("c1n0"))
    g.add_spo(u("c0n0"), u("linkedTo"), u("c1n3"))
    return g


@pytest.mark.slow
@pytest.mark.parametrize("start_method", START_METHODS)
def test_multiprocess_data_partitioning_matches_serial(tbox, data, start_method):
    crs = compile_ontology(tbox)
    serial = HorstReasoner(tbox).materialize(data)
    dp = partition_data(data, GraphPartitioningPolicy(seed=0), k=2)
    union = run_multiprocess(
        dp.partitions,
        [crs.rules] * 2,
        "data",
        owner_table=dict(dp.owner.table),
        start_method=start_method,
    )
    assert union == serial.graph


@pytest.mark.slow
@pytest.mark.parametrize("start_method", START_METHODS)
def test_multiprocess_rule_partitioning_matches_serial(tbox, data, start_method):
    crs = compile_ontology(tbox)
    serial = HorstReasoner(tbox).materialize(data)
    rp = partition_rules(crs.rules, k=2, seed=0)
    union = run_multiprocess(
        [data, data],
        rp.rule_sets,
        "rule",
        rule_sets=rp.rule_sets,
        start_method=start_method,
    )
    assert union == serial.graph


@pytest.mark.slow
@pytest.mark.parametrize("start_method", START_METHODS)
def test_multiprocess_async_matches_lockstep(tbox, data, start_method):
    """The async id-encoded backend against the lock-step oracle, across
    real processes, under both start methods."""
    crs = compile_ontology(tbox)
    dp = partition_data(data, GraphPartitioningPolicy(seed=0), k=2)
    table = dict(dp.owner.table)
    lockstep = run_multiprocess(
        dp.partitions, [crs.rules] * 2, "data",
        owner_table=table, start_method=start_method,
    )
    asynchronous = run_multiprocess_async(
        dp.partitions, [crs.rules] * 2, "data",
        owner_table=table, start_method=start_method,
    )
    assert asynchronous == lockstep


def test_mismatched_configuration_rejected(data):
    with pytest.raises(ValueError):
        run_multiprocess([data, data], [[]], "data", owner_table={})
