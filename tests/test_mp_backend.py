"""End-to-end tests of the real multiprocessing backend (small inputs;
see the module docstring of repro.parallel.mp_backend for why)."""

import pytest

from repro.owl import HorstReasoner
from repro.owl.compiler import compile_ontology
from repro.owl.vocabulary import OWL, RDF
from repro.parallel.mp_backend import run_multiprocess
from repro.partitioning import GraphPartitioningPolicy, partition_data, partition_rules
from repro.rdf import Graph, URI


def u(name):
    return URI(f"ex:{name}")


@pytest.fixture
def tbox():
    g = Graph()
    g.add_spo(u("partOf"), RDF.type, OWL.TransitiveProperty)
    g.add_spo(u("linkedTo"), RDF.type, OWL.SymmetricProperty)
    return g


@pytest.fixture
def data():
    g = Graph()
    for c in range(2):
        for i in range(6):
            g.add_spo(u(f"c{c}n{i}"), u("partOf"), u(f"c{c}n{i + 1}"))
    g.add_spo(u("c0n6"), u("partOf"), u("c1n0"))
    g.add_spo(u("c0n0"), u("linkedTo"), u("c1n3"))
    return g


@pytest.mark.slow
def test_multiprocess_data_partitioning_matches_serial(tbox, data):
    crs = compile_ontology(tbox)
    serial = HorstReasoner(tbox).materialize(data)
    dp = partition_data(data, GraphPartitioningPolicy(seed=0), k=2)
    union = run_multiprocess(
        dp.partitions,
        [crs.rules] * 2,
        "data",
        owner_table=dict(dp.owner.table),
    )
    assert union == serial.graph


@pytest.mark.slow
def test_multiprocess_rule_partitioning_matches_serial(tbox, data):
    crs = compile_ontology(tbox)
    serial = HorstReasoner(tbox).materialize(data)
    rp = partition_rules(crs.rules, k=2, seed=0)
    union = run_multiprocess(
        [data, data],
        rp.rule_sets,
        "rule",
        rule_sets=rp.rule_sets,
    )
    assert union == serial.graph


def test_mismatched_configuration_rejected(data):
    with pytest.raises(ValueError):
        run_multiprocess([data, data], [[]], "data", owner_table={})
