"""DRed incremental maintenance (``MaterializedKB.apply`` /
``SemiNaiveEngine.apply`` / the distributed variant).

The central property is differential: for any closure and any
``(adds, removes)`` batch, ``apply`` must land on exactly the closure a
full :meth:`MaterializedKB.rebuild` computes from the retained base —
across the generic, compiled, and columnar (dense + run store) engines,
with the work counters equal field by field where the engines are
comparable.  Around that sit the deletion-layer units (IdGraph
compaction, RunStore tombstones) and the ``Graph.discard`` audit the
engine's version-keyed mirror cache relies on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog.engine import EngineStats, SemiNaiveEngine
from repro.datalog.parser import parse_rules
from repro.owl.kb import MaterializedKB
from repro.owl.vocabulary import OWL, RDF, RDFS
from repro.rdf import Graph, Triple, URI
from repro.rdf.idstore import IdGraph
from repro.rdf.runstore import RunStore

# --- fixtures ----------------------------------------------------------------

TRANS = parse_rules(
    """@prefix ex: <ex:>
[t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]"""
)


def _horst_tbox() -> Graph:
    """A TBox exercising transitivity, class/property hierarchies and
    domain typing — enough Horst rules that overdeletion cascades cross
    predicates."""
    t = Graph()
    t.add_spo(URI("ex:partOf"), RDF.type, OWL.TransitiveProperty)
    t.add_spo(URI("ex:properPartOf"), RDFS.subPropertyOf, URI("ex:partOf"))
    t.add_spo(URI("ex:Student"), RDFS.subClassOf, URI("ex:Person"))
    t.add_spo(URI("ex:Person"), RDFS.subClassOf, URI("ex:Agent"))
    t.add_spo(URI("ex:enrolledIn"), RDFS.domain, URI("ex:Student"))
    return t


_nodes = st.builds(lambda i: URI(f"n:{i}"), st.integers(0, 10))
_preds = st.sampled_from(
    [URI("ex:partOf"), URI("ex:properPartOf"), URI("ex:enrolledIn"),
     RDF.type]
)
_objs = st.builds(lambda i: URI(f"n:{i}"), st.integers(0, 10)) | st.sampled_from(
    [URI("ex:Student"), URI("ex:Person")]
)
_triples = st.builds(Triple, _nodes, _preds, _objs)

ENGINE_CONFIGS = [
    ("generic", dict(compile_rules=False)),
    ("compiled", dict(compile_rules=True)),
    ("columnar-dense", dict(engine="columnar")),
    ("columnar-run", dict(engine="columnar", store="run")),
]


def _kb(tbox: Graph, config: dict) -> MaterializedKB:
    return MaterializedKB(tbox, **config)


# --- differential: apply == rebuild ------------------------------------------


@pytest.mark.parametrize("name,config", ENGINE_CONFIGS)
@settings(max_examples=25, deadline=None)
@given(
    base=st.lists(_triples, min_size=1, max_size=25),
    adds=st.lists(_triples, max_size=6),
    data=st.data(),
)
def test_apply_matches_rebuild(name, config, base, adds, data):
    tbox = _horst_tbox()
    kb = _kb(tbox, config)
    kb.add(base)
    pool = list(kb.base_graph)
    removes = data.draw(
        st.lists(st.sampled_from(pool), max_size=5, unique=True)
    )
    result = kb.apply(adds=adds, removes=removes)

    oracle = _kb(tbox, config)
    oracle.add(iter(kb.base_graph))
    assert set(kb.graph) == set(oracle.graph)
    assert kb.base_graph == oracle.base_graph
    # Net accounting: added/removed describe the closure delta exactly.
    for t in result.added:
        assert t in kb.graph
    for t in result.removed:
        assert t not in kb.graph
    # rebuild() is the differential oracle in-place too.
    snapshot = set(kb.graph)
    kb.rebuild()
    assert set(kb.graph) == snapshot


@settings(max_examples=15, deadline=None)
@given(
    base=st.lists(_triples, min_size=2, max_size=20),
    adds=st.lists(_triples, max_size=5),
    data=st.data(),
)
def test_apply_stats_parity_across_engines(base, adds, data):
    """compiled / columnar-dense / columnar-run tick the same six
    counters for the same apply — the stats-equality contract that keeps
    simulated-cluster work comparable across execution layers."""
    tbox = _horst_tbox()
    kbs = {
        name: _kb(tbox, config)
        for name, config in ENGINE_CONFIGS
        if name != "generic"  # generic skips dispatch accounting
    }
    for kb in kbs.values():
        kb.add(base)
    pool = list(next(iter(kbs.values())).base_graph)
    removes = data.draw(
        st.lists(st.sampled_from(pool), max_size=4, unique=True)
    )
    stats = {}
    closures = {}
    for name, kb in kbs.items():
        kb.apply(adds=adds, removes=removes)
        stats[name] = kb.last_load_stats
        closures[name] = set(kb.graph)
    reference = stats["compiled"]
    for name, s in stats.items():
        assert s == reference, (name, s, reference)
    ref_closure = closures["compiled"]
    for name, c in closures.items():
        assert c == ref_closure, name


def test_delete_then_readd_roundtrip():
    tbox = _horst_tbox()
    for name, config in ENGINE_CONFIGS:
        kb = _kb(tbox, config)
        chain = [
            Triple(URI(f"n:{i}"), URI("ex:partOf"), URI(f"n:{i + 1}"))
            for i in range(6)
        ]
        kb.add(chain)
        before = set(kb.graph)
        victim = chain[3]
        kb.apply(removes=[victim])
        assert victim not in kb.graph
        kb.apply(adds=[victim])
        assert set(kb.graph) == before, name


def test_removed_base_triple_survives_if_derivable():
    """Retracting a base fact that is still derivable from the remaining
    base must keep it in the closure (DRed's rederivation phase)."""
    tbox = _horst_tbox()
    a_c = Triple(URI("n:a"), URI("ex:partOf"), URI("n:c"))
    for name, config in ENGINE_CONFIGS:
        kb = _kb(tbox, config)
        kb.add([
            Triple(URI("n:a"), URI("ex:partOf"), URI("n:b")),
            Triple(URI("n:b"), URI("ex:partOf"), URI("n:c")),
            a_c,  # asserted AND derivable via transitivity
        ])
        result = kb.apply(removes=[a_c])
        assert a_c in kb.graph, name  # survives: still derivable
        assert a_c not in kb.base_graph
        assert a_c not in result.removed
        # Now cut the derivation too: it must finally go.
        kb.apply(removes=[Triple(URI("n:a"), URI("ex:partOf"), URI("n:b"))])
        assert a_c not in kb.graph, name


def test_remove_nonbase_is_noop():
    tbox = _horst_tbox()
    for name, config in ENGINE_CONFIGS:
        kb = _kb(tbox, config)
        kb.add([
            Triple(URI("n:a"), URI("ex:partOf"), URI("n:b")),
            Triple(URI("n:b"), URI("ex:partOf"), URI("n:c")),
        ])
        before = set(kb.graph)
        derived = Triple(URI("n:a"), URI("ex:partOf"), URI("n:c"))
        assert derived in kb.graph
        result = kb.apply(removes=[derived, Triple(URI("n:x"), URI("ex:p"),
                                                   URI("n:y"))])
        assert set(kb.graph) == before, name
        assert len(result.removed) == 0 and len(result.added) == 0


def test_empty_apply_returns_empty_result():
    kb = _kb(_horst_tbox(), dict(engine="columnar"))
    kb.add([Triple(URI("n:a"), URI("ex:partOf"), URI("n:b"))])
    result = kb.apply()
    assert len(result.added) == 0 and len(result.removed) == 0
    assert kb.last_load_stats == EngineStats()


# --- satellites: stats bookkeeping -------------------------------------------


def test_rebuild_refreshes_last_load_stats():
    kb = _kb(_horst_tbox(), {})
    kb.add([
        Triple(URI(f"n:{i}"), URI("ex:partOf"), URI(f"n:{i + 1}"))
        for i in range(5)
    ])
    add_stats = kb.last_load_stats
    kb.rebuild()
    rebuild_stats = kb.last_load_stats
    assert rebuild_stats.derived > 0
    # rebuild reports its own run, not the stale add() run.
    assert rebuild_stats is not add_stats
    assert kb.total_stats == rebuild_stats


def test_parallel_bulk_load_merges_engine_stats():
    tbox = _horst_tbox()
    data = Graph()
    for i in range(12):
        data.add_spo(URI(f"n:{i}"), URI("ex:partOf"), URI(f"n:{i + 1}"))
    kb = MaterializedKB(tbox)
    kb.bulk_load(data, parallel_k=2)
    assert kb.last_load_stats.firings > 0
    assert kb.last_load_stats.derived > 0
    assert kb.total_stats.work == kb.last_load_stats.work
    # The cluster's accounting reports the same derivation volume order
    # as a serial load (not equality: workers re-derive at boundaries).
    serial = MaterializedKB(tbox)
    serial.bulk_load(data)
    assert kb.last_load_stats.derived >= serial.last_load_stats.derived


# --- store deletion units ----------------------------------------------------


def _cols(rows):
    arr = np.asarray(rows, dtype=np.int64).reshape(-1, 3)
    return arr[:, 0], arr[:, 1], arr[:, 2]


def test_idgraph_delete_rows_compacts_and_clears_views():
    g = IdGraph()
    g.add_rows(*_cols([(1, 2, 3), (4, 5, 6), (7, 8, 9)]))
    # Build sorted views before deleting: stale views would corrupt probes.
    assert g.contains_rows(*_cols([(4, 5, 6)])).all()
    removed = g.delete_rows(*_cols([(4, 5, 6), (100, 100, 100)]))
    assert removed == 1
    assert len(g) == 2
    assert not g.contains_rows(*_cols([(4, 5, 6)])).any()
    assert g.contains_rows(*_cols([(1, 2, 3), (7, 8, 9)])).all()
    # Delete/re-add round-trip.
    g.add_rows(*_cols([(4, 5, 6)]))
    assert len(g) == 3
    assert g.contains_rows(*_cols([(4, 5, 6)])).all()


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(),
                  st.lists(st.tuples(st.integers(0, 8), st.integers(0, 3),
                                     st.integers(0, 8)),
                           min_size=1, max_size=6)),
        max_size=12,
    )
)
def test_runstore_deletion_matches_idgraph_reference(ops):
    """RunStore (tombstones + merge annihilation) and IdGraph (eager
    compaction) agree on every read surface under random add/delete
    churn."""
    run = RunStore(memory_budget_bytes=1 << 12)  # tiny: force compactions
    ref = IdGraph()
    for is_delete, rows in ops:
        s, p, o = _cols(rows)
        if is_delete:
            run.delete_rows(s, p, o)
            ref.delete_rows(s, p, o)
        else:
            run.add_rows(s, p, o)
            ref.add_rows(s, p, o)
        assert len(run) == len(ref)
        probe = _cols([(i, j, k) for i in range(9) for j in range(4)
                       for k in range(9)])
        assert (run.contains_rows(*probe) == ref.contains_rows(*probe)).all()
    rs, rp, ro = run.columns()
    got = set(zip(rs.tolist(), rp.tolist(), ro.tolist()))
    es, ep, eo = ref.columns()
    want = set(zip(es.tolist(), ep.tolist(), eo.tolist()))
    assert got == want


def test_runstore_tombstone_resurrection_and_annihilation():
    run = RunStore(tail_rows=32)  # small tail: rows seal into runs fast
    rows = [(i, 1, i + 1) for i in range(200)]
    run.add_rows(*_cols(rows))
    assert len(run._tail) < 32  # the bulk is sealed, not in the tail
    run.delete_rows(*_cols(rows[50:60]))
    assert len(run) == 190
    assert not run.contains_rows(*_cols(rows[50:60])).any()
    stats = run.store_stats()
    assert stats["tombstones"] > 0 or stats["tombstones_cleared"] > 0
    # Resurrection: re-adding a tombstoned row consumes the tombstone.
    run.add_rows(*_cols(rows[50:51]))
    assert len(run) == 191
    assert run.contains_rows(*_cols(rows[50:51])).all()
    # Churn until merges annihilate tombstoned rows for good.
    for i in range(300):
        run.add_rows(*_cols([(1000 + i, 2, i)]))
    stats = run.store_stats()
    assert stats["tombstones"] + stats["tombstones_cleared"] >= 9
    assert len(run) == 191 + 300


# --- Graph.discard audit -----------------------------------------------------


def test_discard_rejects_non_triples():
    g = Graph()
    with pytest.raises(TypeError):
        g.discard(("s", "p", "o"))  # type: ignore[arg-type]


def test_discard_keeps_indexes_and_version_coherent():
    a = Triple(URI("n:a"), URI("ex:p"), URI("n:b"))
    b = Triple(URI("n:a"), URI("ex:q"), URI("n:b"))
    g = Graph([a, b])
    v = g.version
    assert g.discard(a) is True
    assert g.version == v + 1
    # All three index paths agree after the removal.
    assert list(g.match(s=URI("n:a"), p=URI("ex:p"))) == []
    assert list(g.match(p=URI("ex:p"))) == []
    assert list(g.match(o=URI("n:b"))) == [b]
    assert a not in g and b in g and len(g) == 1
    # Discarding an absent triple is a no-op and does not bump version.
    v = g.version
    assert g.discard(a) is False
    assert g.version == v


def test_columnar_mirror_invalidated_by_external_discard():
    """The engine's cached id mirror is version-keyed: a discard made
    behind the engine's back must force a mirror rebuild, never a resume
    from stale rows."""
    engine = SemiNaiveEngine(TRANS, engine="columnar")
    g = Graph()
    chain = [Triple(URI(f"n:{i}"), URI("ex:p"), URI(f"n:{i + 1}"))
             for i in range(4)]
    for t in chain:
        g.add(t)
    engine.run(g)
    long_edge = Triple(URI("n:0"), URI("ex:p"), URI("n:4"))
    assert long_edge in g
    # Mutate the graph without telling the engine.
    for t in list(g):
        g.discard(t)
    g.add(chain[0])
    result = engine.run(g)
    assert long_edge not in g
    assert set(g) == {chain[0]}
    assert result.stats.derived == 0


def test_apply_then_run_reuses_coherent_mirror():
    """After an engine-internal apply mutates the store, a follow-up
    incremental run on the same graph object must see the post-apply
    rows (the mirror is restamped, not stale)."""
    engine = SemiNaiveEngine(TRANS, engine="columnar")
    g = Graph()
    chain = [Triple(URI(f"n:{i}"), URI("ex:p"), URI(f"n:{i + 1}"))
             for i in range(5)]
    asserted = Graph(chain)
    for t in chain:
        g.add(t)
    engine.run(g)
    asserted.discard(chain[2])
    engine.apply(g, removes=[chain[2]], asserted=asserted)
    assert Triple(URI("n:0"), URI("ex:p"), URI("n:4")) not in g
    # Incremental add through the (cached) mirror: must compose with the
    # deletion, not resurrect pre-apply rows.
    engine.run(g, delta=[chain[2]])
    assert Triple(URI("n:0"), URI("ex:p"), URI("n:4")) in g
    oracle = Graph(chain)
    SemiNaiveEngine(TRANS, engine="columnar").run(oracle)
    assert set(g) == set(oracle)


# --- distributed DRed --------------------------------------------------------


@pytest.mark.parametrize("approach,k", [("data", 3), ("rule", 2)])
@pytest.mark.parametrize("delivery", ["fifo", "shuffle"])
def test_distributed_apply_matches_serial(approach, k, delivery):
    from repro.parallel.driver import ParallelReasoner

    tbox = _horst_tbox()
    data = Graph()
    for i in range(20):
        data.add_spo(URI(f"n:{i}"), URI("ex:partOf"), URI(f"n:{i + 1}"))
    for i in range(6):
        data.add_spo(URI(f"s:{i}"), RDF.type, URI("ex:Student"))
    full = Graph()
    full.update(iter(tbox))
    full.update(iter(data))
    removes = [
        Triple(URI("n:4"), URI("ex:partOf"), URI("n:5")),
        Triple(URI("s:2"), RDF.type, URI("ex:Student")),
    ]
    adds = [
        Triple(URI("n:4"), URI("ex:partOf"), URI("n:40")),
        Triple(URI("s:9"), RDF.type, URI("ex:Student")),
    ]
    pr = ParallelReasoner(tbox, k=k, approach=approach, engine="columnar")
    result = pr.apply_async(full, adds=adds, removes=removes,
                            delivery=delivery)

    oracle = MaterializedKB(tbox)
    oracle.add(iter(data))
    oracle.apply(adds=adds, removes=removes)
    schema_closure = set(pr.compiled.schema) | set(tbox)
    assert set(oracle.graph) - schema_closure <= set(result.graph)
    assert (set(result.graph) - schema_closure
            == set(oracle.graph) - schema_closure)


def test_distributed_apply_run_store():
    from repro.parallel.driver import ParallelReasoner

    tbox = _horst_tbox()
    data = Graph()
    for i in range(15):
        data.add_spo(URI(f"n:{i}"), URI("ex:partOf"), URI(f"n:{i + 1}"))
    full = Graph()
    full.update(iter(tbox))
    full.update(iter(data))
    removes = [Triple(URI("n:7"), URI("ex:partOf"), URI("n:8"))]
    pr = ParallelReasoner(tbox, k=2, approach="data", store="run",
                          memory_budget_bytes=1 << 14)
    result = pr.apply_async(full, removes=removes)
    oracle = MaterializedKB(tbox)
    oracle.add(iter(data))
    oracle.apply(removes=removes)
    schema_closure = set(pr.compiled.schema) | set(tbox)
    assert (set(result.graph) - schema_closure
            == set(oracle.graph) - schema_closure)


def test_removal_batch_requires_id_native_worker():
    from repro.parallel.messages import RemovalBatch
    from repro.parallel.routing import BroadcastRouter
    from repro.parallel.worker import PartitionWorker

    g = Graph([Triple(URI("n:a"), URI("ex:p"), URI("n:b"))])
    w = PartitionWorker(0, g, TRANS, BroadcastRouter(2))
    w.bootstrap()
    batch = RemovalBatch.from_columns(
        1, 0, 0, _cols([(0, 1, 2)]), retract_base=True)
    with pytest.raises(RuntimeError, match="id-native"):
        w.step([batch])
