"""Tests for the Turtle-subset parser."""

import pytest

from repro.rdf import Graph, Literal, Triple, URI
from repro.rdf.namespace import XSD
from repro.rdf.terms import BNode
from repro.rdf.turtle import (
    RDF_TYPE,
    TurtleParseError,
    parse_turtle,
    parse_turtle_graph,
)

EX = "http://x.org/"
PREFIX = f"@prefix ex: <{EX}> .\n"


def u(name):
    return URI(EX + name)


class TestBasics:
    def test_simple_triple(self):
        g = parse_turtle_graph(PREFIX + "ex:a ex:p ex:b .")
        assert Triple(u("a"), u("p"), u("b")) in g

    def test_a_keyword(self):
        g = parse_turtle_graph(PREFIX + "ex:alice a ex:Person .")
        assert Triple(u("alice"), RDF_TYPE, u("Person")) in g

    def test_predicate_list(self):
        g = parse_turtle_graph(
            PREFIX + "ex:a ex:p ex:b ; ex:q ex:c ; ex:r ex:d ."
        )
        assert len(g) == 3
        assert Triple(u("a"), u("q"), u("c")) in g

    def test_object_list(self):
        g = parse_turtle_graph(PREFIX + "ex:a ex:p ex:b, ex:c, ex:d .")
        assert len(g) == 3
        assert {t.o for t in g} == {u("b"), u("c"), u("d")}

    def test_trailing_semicolon_tolerated(self):
        g = parse_turtle_graph(PREFIX + "ex:a ex:p ex:b ; .")
        assert len(g) == 1

    def test_absolute_iris(self):
        g = parse_turtle_graph("<http://y.org/s> <http://y.org/p> <http://y.org/o> .")
        assert len(g) == 1

    def test_bnodes(self):
        g = parse_turtle_graph(PREFIX + "_:x ex:p _:y .")
        t = next(iter(g))
        assert t.s == BNode("x") and t.o == BNode("y")

    def test_comments_ignored(self):
        g = parse_turtle_graph(PREFIX + "# comment\nex:a ex:p ex:b . # tail")
        assert len(g) == 1

    def test_sparql_style_prefix(self):
        g = parse_turtle_graph(f"PREFIX ex: <{EX}>\nex:a ex:p ex:b .")
        assert Triple(u("a"), u("p"), u("b")) in g

    def test_base_resolution(self):
        g = parse_turtle_graph("@base <http://b.org/> .\n<s> <p> <o> .")
        t = next(iter(g))
        assert t.s == URI("http://b.org/s")

    def test_multiple_statements(self):
        g = parse_turtle_graph(PREFIX + "ex:a ex:p ex:b .\nex:c ex:p ex:d .")
        assert len(g) == 2


class TestLiterals:
    def test_plain_string(self):
        g = parse_turtle_graph(PREFIX + 'ex:a ex:p "hello" .')
        assert next(iter(g)).o == Literal("hello")

    def test_language_tag(self):
        g = parse_turtle_graph(PREFIX + 'ex:a ex:p "bonjour"@fr .')
        assert next(iter(g)).o == Literal("bonjour", language="fr")

    def test_typed_literal(self):
        g = parse_turtle_graph(PREFIX + 'ex:a ex:p "5"^^ex:num .')
        assert next(iter(g)).o == Literal("5", datatype=u("num"))

    def test_integer_shorthand(self):
        g = parse_turtle_graph(PREFIX + "ex:a ex:p 42 .")
        assert next(iter(g)).o == Literal("42", datatype=XSD.integer)

    def test_decimal_shorthand(self):
        g = parse_turtle_graph(PREFIX + "ex:a ex:p -1.5 .")
        assert next(iter(g)).o == Literal("-1.5", datatype=XSD.decimal)

    def test_boolean_shorthand(self):
        g = parse_turtle_graph(PREFIX + "ex:a ex:p true .")
        assert next(iter(g)).o == Literal("true", datatype=XSD.boolean)

    def test_escapes(self):
        g = parse_turtle_graph(PREFIX + r'ex:a ex:p "tab\tnl\n\"q\"" .')
        assert next(iter(g)).o.lexical == 'tab\tnl\n"q"'

    def test_long_string(self):
        g = parse_turtle_graph(PREFIX + 'ex:a ex:p """multi\nline "quoted" text""" .')
        assert next(iter(g)).o.lexical == 'multi\nline "quoted" text'


class TestErrors:
    @pytest.mark.parametrize(
        "doc,match",
        [
            ("ex:a ex:p ex:b .", "unknown prefix"),
            (PREFIX + "ex:a ex:p ex:b", "unexpected end"),
            (PREFIX + 'ex:a "lit" ex:b .', "predicate must be an IRI"),
            (PREFIX + '"lit" ex:p ex:b .', "literal subject"),
            (PREFIX + "ex:a ex:p [ ex:q ex:b ] .", "subset"),
            (PREFIX + "ex:a ex:p (1 2) .", "subset"),
            ("@prefix ex <http://x.org/> .", "prefix name"),
            (PREFIX + r'ex:a ex:p "\q" .', "unknown escape"),
        ],
    )
    def test_malformed(self, doc, match):
        with pytest.raises(TurtleParseError, match=match):
            list(parse_turtle(doc))

    def test_error_carries_line_number(self):
        doc = PREFIX + "ex:a ex:p ex:b .\nex:broken ex:p [ ] ."
        with pytest.raises(TurtleParseError, match="line 3"):
            list(parse_turtle(doc))


class TestInterop:
    def test_turtle_equals_ntriples_for_same_content(self):
        from repro.rdf import parse_ntriples

        turtle = PREFIX + 'ex:a a ex:T ; ex:p "v"@en, ex:b .'
        ntriples = (
            f"<{EX}a> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <{EX}T> .\n"
            f'<{EX}a> <{EX}p> "v"@en .\n'
            f"<{EX}a> <{EX}p> <{EX}b> .\n"
        )
        assert parse_turtle_graph(turtle) == Graph(parse_ntriples(ntriples))

    def test_parse_real_ontology_shape(self):
        """A Turtle rendering of a small ontology loads and reasons."""
        doc = """
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        @prefix owl: <http://www.w3.org/2002/07/owl#> .
        @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
        @prefix ex: <http://x.org/> .

        ex:Student rdfs:subClassOf ex:Person .
        ex:advisor rdfs:domain ex:Student ;
                   rdfs:range ex:Professor .
        ex:partOf a owl:TransitiveProperty .
        """
        tbox = parse_turtle_graph(doc)
        from repro.owl import HorstReasoner

        data = parse_turtle_graph(
            "@prefix ex: <http://x.org/> .\n"
            "ex:alice ex:advisor ex:bob .\n"
            "ex:x ex:partOf ex:y . ex:y ex:partOf ex:z ."
        )
        result = HorstReasoner(tbox).materialize(data)
        assert Triple(u("alice"), RDF_TYPE, u("Student")) in result.graph
        assert Triple(u("x"), u("partOf"), u("z")) in result.graph
