"""Id-native columnar closure: store, bulk dictionary APIs, and the
differential property tests proving the columnar path computes the same
fixpoint — with the same work accounting — as the term-level engines,
serially and through the id-native parallel workers.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import NaiveEngine, SemiNaiveEngine, parse_rules
from repro.datalog.columnar import ColumnarEngine
from repro.datasets import LUBM
from repro.datasets.lubm import lubm_ontology
from repro.owl.compiler import compile_ontology
from repro.owl.reasoner import HorstReasoner
from repro.owl.vocabulary import OWL, RDF, RDFS
from repro.parallel.driver import ParallelReasoner
from repro.rdf import Graph, Triple, URI
from repro.rdf.dictionary import EncodedGraph, PartitionDictionary, TermDictionary
from repro.rdf.idstore import IdGraph, expand_ranges, member_mask, pack_columns

PREFIX = "@prefix ex: <ex:>\n"
TRANS = parse_rules(PREFIX + "[t: (?a ex:p ?b) (?b ex:p ?c) -> (?a ex:p ?c)]")

START_METHODS = [
    pytest.param(
        method,
        marks=pytest.mark.skipif(
            method not in mp.get_all_start_methods(),
            reason=f"start method {method!r} unavailable on this platform",
        ),
    )
    for method in ("fork", "spawn")
]


def chain(n, pred="ex:p"):
    g = Graph()
    for i in range(n):
        g.add_spo(URI(f"ex:n{i}"), URI(pred), URI(f"ex:n{i + 1}"))
    return g


def arr(*vals):
    return np.asarray(vals, dtype=np.int64)


# -- the columnar store ------------------------------------------------------


class TestIdGraph:
    def test_add_rows_dedups_batch_and_store(self):
        g = IdGraph()
        added = g.add_rows(arr(1, 1, 2), arr(5, 5, 5), arr(3, 3, 4))
        assert len(added[0]) == 2  # (1,5,3) twice in the batch
        assert len(g) == 2
        added = g.add_rows(arr(1, 9), arr(5, 9), arr(3, 9))
        assert len(added[0]) == 1  # (1,5,3) already stored
        assert len(g) == 3

    def test_contains_rows(self):
        g = IdGraph()
        g.add_rows(arr(1, 2), arr(5, 5), arr(3, 4))
        mask = g.contains_rows(arr(1, 2, 2), arr(5, 5, 5), arr(3, 3, 4))
        assert mask.tolist() == [True, False, True]

    def test_range_lookup_matches_linear_scan(self):
        g = IdGraph()
        g.add_rows(arr(1, 1, 2, 3), arr(5, 6, 5, 5), arr(7, 8, 7, 9))
        rows, reps = g.range_lookup((1,), arr(5, 6))
        s, p, o = g.columns()
        assert sorted(p[rows].tolist()) == [5, 5, 5, 6]
        # reps maps every hit back to its query.
        assert all(p[r] == [5, 6][q] for r, q in zip(rows, reps))

    def test_multi_column_view_is_lexicographic(self):
        g = IdGraph()
        g.add_rows(arr(2, 1, 1), arr(5, 5, 5), arr(0, 9, 1))
        keys, perm = g.sorted_view((0, 2))
        s, _p, o = g.columns()
        pairs = [(int(s[i]), int(o[i])) for i in perm]
        assert pairs == sorted(pairs)

    def test_views_invalidated_by_append(self):
        g = IdGraph()
        g.add_rows(arr(1), arr(5), arr(3))
        g.sorted_view((0, 1, 2))
        g.add_rows(arr(2), arr(5), arr(4))
        assert g.contains_rows(arr(2), arr(5), arr(4)).tolist() == [True]

    def test_expand_ranges(self):
        flat, reps = expand_ranges(arr(0, 5, 5), arr(2, 5, 8))
        assert flat.tolist() == [0, 1, 5, 6, 7]
        assert reps.tolist() == [0, 0, 2, 2, 2]

    def test_member_mask_single_and_packed(self):
        assert member_mask(arr(1, 3, 5), arr(0, 3, 6)).tolist() == [
            False, True, False]
        keys = np.sort(pack_columns((arr(1, 2), arr(5, 6))))
        q = pack_columns((arr(1, 2), arr(6, 6)))
        assert member_mask(keys, q).tolist() == [False, True]


# -- bulk dictionary APIs (satellite) ----------------------------------------


class TestBulkDictionary:
    def test_encode_many_decode_many_roundtrip(self):
        d = TermDictionary()
        terms = [URI("ex:a"), URI("ex:b"), URI("ex:a")]
        ids = d.encode_many(terms)
        assert ids.tolist() == [0, 1, 0]
        assert d.decode_many(ids) == terms

    def test_encode_many_matches_scalar_encode(self):
        d1, d2 = TermDictionary(), TermDictionary()
        terms = [URI(f"ex:t{i % 4}") for i in range(10)]
        assert d1.encode_many(terms).tolist() == [d2.encode(t) for t in terms]

    def test_partition_decode_many_spans_stripes(self):
        base = TermDictionary()
        base.encode(URI("ex:base"))
        d = PartitionDictionary(base, node_id=0, k=2)
        minted = d.encode(URI("ex:minted"))
        ids = arr(0, minted)
        assert d.decode_many(ids) == [URI("ex:base"), URI("ex:minted")]

    def test_canonical_ids_resolve_peer_aliases(self):
        base = TermDictionary()
        base.encode(URI("ex:base"))
        d = PartitionDictionary(base, node_id=0, k=2)
        local = d.encode(URI("ex:fresh"))
        # A peer minted a different id for the same term; after the delta
        # registers it, canonicalization maps it onto the local id.
        peer_id = 1 + 1 * 2 + 1  # base_size + j*k + node 1
        d.apply_delta([(peer_id, URI("ex:fresh"))])
        assert d.canonical_ids(arr(0, peer_id, local)).tolist() == [
            0, local, local]

    def test_kind_masks_cover_minted_ids(self):
        from repro.rdf import Literal

        base = TermDictionary()
        base.encode(URI("ex:u"))
        d = PartitionDictionary(base, node_id=0, k=1)
        lit = d.encode(Literal("x"))
        assert d.resource_mask(arr(0, lit)).tolist() == [True, False]
        assert d.uri_mask(arr(0, lit)).tolist() == [True, False]


class TestEncodedGraphCache:
    def test_views_cached_and_invalidated_by_append(self):
        g = chain(3)
        eg = EncodedGraph.from_triples(iter(g))
        first = eg.resource_ids()
        assert eg.resource_ids() is first  # cached object identity
        edges = eg.edges()
        assert eg.edges() is edges
        n = eg.append([Triple(URI("ex:n9"), URI("ex:p"), URI("ex:n0"))])
        assert n == 1
        assert eg.resource_ids() is not first
        assert URI("ex:n9") in [eg.dictionary.decode(int(i))
                                for i in eg.resource_ids()]

    def test_append_empty_keeps_cache(self):
        eg = EncodedGraph.from_triples(iter(chain(2)))
        first = eg.resource_ids()
        assert eg.append([]) == 0
        assert eg.resource_ids() is first


# -- serial columnar engine ---------------------------------------------------


def _run_columnar(rules, graph):
    d = TermDictionary()
    idg = IdGraph()
    enc = d.encode
    cols = np.asarray(
        [[enc(t.s), enc(t.p), enc(t.o)] for t in graph], dtype=np.int64
    ).reshape(-1, 3)
    idg.add_rows(cols[:, 0], cols[:, 1], cols[:, 2])
    result = ColumnarEngine(rules, d).run(idg)
    s, p, o = idg.columns()
    out = Graph()
    for st_, pt, ot in zip(d.decode_many(s), d.decode_many(p), d.decode_many(o)):
        out.add(Triple(st_, pt, ot))
    return out, result.stats


class TestColumnarEngine:
    def test_transitive_chain_closure(self):
        out, _stats = _run_columnar(TRANS, chain(5))
        assert len(out) == 15

    def test_engine_kind_selection(self):
        assert SemiNaiveEngine(TRANS, engine="columnar").engine_kind == "columnar"
        with pytest.raises(ValueError):
            SemiNaiveEngine(TRANS, engine="quantum")

    def test_stats_match_compiled_field_by_field(self):
        g1, g2 = chain(8), chain(8)
        compiled = SemiNaiveEngine(TRANS).run(g1)
        columnar = SemiNaiveEngine(TRANS, engine="columnar").run(g2)
        assert g1 == g2
        for f in ("iterations", "firings", "derived", "join_probes",
                  "rules_dispatched", "rules_skipped"):
            assert getattr(columnar.stats, f) == getattr(compiled.stats, f), f

    def test_mirror_survives_incremental_deltas(self):
        base = chain(4)
        full = chain(5)
        SemiNaiveEngine(TRANS).run(full)
        engine = SemiNaiveEngine(TRANS, engine="columnar")
        engine.run(base)
        engine.run(base, delta=[Triple(URI("ex:n4"), URI("ex:p"), URI("ex:n5"))])
        assert base == full

    def test_external_mutation_invalidates_mirror(self):
        # Mutating the graph behind the engine's back must re-mirror (the
        # version counter); the fixpoint then matches the compiled engine
        # run through the identical sequence.
        g_cols, g_comp = chain(3), chain(3)
        columnar = SemiNaiveEngine(TRANS, engine="columnar")
        compiled = SemiNaiveEngine(TRANS)
        columnar.run(g_cols)
        compiled.run(g_comp)
        extra = Triple(URI("ex:n3"), URI("ex:p"), URI("ex:n4"))
        g_cols.add(extra)
        g_comp.add(extra)
        delta = [Triple(URI("ex:n4"), URI("ex:p"), URI("ex:n5"))]
        columnar.run(g_cols, delta=list(delta))
        compiled.run(g_comp, delta=list(delta))
        assert g_cols == g_comp
        # The external edge is visible to the resumed fixpoint: the delta
        # join reaches through it (n3-n5 via the mutated edge).
        assert Triple(URI("ex:n3"), URI("ex:p"), URI("ex:n5")) in g_cols


# -- differential property tests ----------------------------------------------

EX = "http://example.org/diff#"


def _rich_tbox() -> Graph:
    g = Graph()
    g.add_spo(URI(EX + "Student"), RDFS.subClassOf, URI(EX + "Person"))
    g.add_spo(URI(EX + "Person"), RDFS.subClassOf, URI(EX + "Agent"))
    g.add_spo(URI(EX + "advisor"), RDFS.domain, URI(EX + "Student"))
    g.add_spo(URI(EX + "advisor"), RDFS.range, URI(EX + "Person"))
    g.add_spo(URI(EX + "knows"), RDF.type, OWL.SymmetricProperty)
    g.add_spo(URI(EX + "partOf"), RDF.type, OWL.TransitiveProperty)
    g.add_spo(URI(EX + "advisor"), OWL.inverseOf, URI(EX + "advises"))
    g.add_spo(URI(EX + "hasId"), RDF.type, OWL.InverseFunctionalProperty)
    return g


HORST_RULES = compile_ontology(_rich_tbox(), include_sameas_propagation=True).rules

_individuals = st.integers(min_value=0, max_value=6).map(
    lambda i: URI(f"{EX}ind{i}")
)
_classes = st.sampled_from(
    [URI(EX + "Student"), URI(EX + "Person"), URI(EX + "Agent")]
)
_ids = st.integers(min_value=0, max_value=2).map(lambda i: URI(f"{EX}id{i}"))

_instance_triples = st.one_of(
    st.tuples(
        _individuals,
        st.sampled_from(
            [
                URI(EX + "advisor"),
                URI(EX + "advises"),
                URI(EX + "knows"),
                URI(EX + "partOf"),
            ]
        ),
        _individuals,
    ),
    st.tuples(_individuals, st.just(RDF.type), _classes),
    st.tuples(_individuals, st.just(URI(EX + "hasId")), _ids),
)


@st.composite
def _instance_graphs(draw):
    triples = draw(st.lists(_instance_triples, min_size=0, max_size=18))
    g = Graph()
    for s, p, o in triples:
        g.add_spo(s, p, o)
    return g


class TestDifferential:
    @settings(max_examples=30, deadline=None)
    @given(_instance_graphs())
    def test_four_layers_agree_on_full_horst_set(self, data):
        g_naive = data.copy()
        g_generic = data.copy()
        g_compiled = data.copy()
        g_columnar = data.copy()
        NaiveEngine(HORST_RULES).run(g_naive)
        SemiNaiveEngine(HORST_RULES, compile_rules=False).run(g_generic)
        compiled = SemiNaiveEngine(HORST_RULES).run(g_compiled)
        columnar = SemiNaiveEngine(HORST_RULES, engine="columnar").run(g_columnar)
        assert g_naive == g_generic == g_compiled == g_columnar
        # The columnar stats replicate the compiled kernels' accounting
        # candidate for candidate, not just in aggregate.
        for f in ("iterations", "firings", "derived", "join_probes",
                  "rules_dispatched", "rules_skipped"):
            assert getattr(columnar.stats, f) == getattr(compiled.stats, f), f

    @settings(max_examples=10, deadline=None)
    @given(_instance_graphs(), _instance_graphs())
    def test_columnar_delta_resume_agrees(self, base, extra):
        full = base.copy()
        full.update(iter(extra))
        SemiNaiveEngine(HORST_RULES).run(full)

        resumed = base.copy()
        engine = SemiNaiveEngine(HORST_RULES, engine="columnar")
        engine.run(resumed)
        engine.run(resumed, delta=list(extra))
        assert resumed == full

    @settings(max_examples=10, deadline=None)
    @given(_instance_graphs())
    def test_id_native_workers_match_term_workers(self, data):
        tbox = _rich_tbox()
        mixed = Graph(list(tbox) + list(data))
        term = ParallelReasoner(tbox, k=3, encode_wire=True).materialize(mixed)
        cols = ParallelReasoner(
            tbox, k=3, encode_wire=True, engine="columnar"
        ).materialize(mixed)
        assert set(term.graph) == set(cols.graph)

    def test_lubm1_closure_matches_compiled(self):
        data = LUBM(1).data
        onto = lubm_ontology()
        compiled = HorstReasoner(onto, engine="compiled").materialize(data)
        columnar = HorstReasoner(onto, engine="columnar").materialize(data)
        assert compiled.graph == columnar.graph
        assert (compiled.engine_stats.join_probes
                == columnar.engine_stats.join_probes)
        assert compiled.engine_stats.firings == columnar.engine_stats.firings


# -- id-native parallel workers across process boundaries ---------------------


def _mp_tbox():
    g = Graph()
    g.add_spo(URI("ex:partOf"), RDF.type, OWL.TransitiveProperty)
    g.add_spo(URI("ex:linkedTo"), RDF.type, OWL.SymmetricProperty)
    return g


def _mp_data():
    g = Graph()
    for c in range(2):
        for i in range(6):
            g.add_spo(URI(f"ex:c{c}n{i}"), URI("ex:partOf"),
                      URI(f"ex:c{c}n{i + 1}"))
    g.add_spo(URI("ex:c0n6"), URI("ex:partOf"), URI("ex:c1n0"))
    g.add_spo(URI("ex:c0n0"), URI("ex:linkedTo"), URI("ex:c1n3"))
    return g


class TestIdNativeWorkers:
    def test_worker_decodes_only_at_output(self):
        from repro.parallel.routing import BroadcastRouter
        from repro.parallel.worker import PartitionWorker

        base = TermDictionary()
        data = _mp_data()
        for t in data:
            base.encode(t.s), base.encode(t.p), base.encode(t.o)
        w = PartitionWorker(
            0, data, compile_ontology(_mp_tbox()).rules, BroadcastRouter(1),
            dictionary=PartitionDictionary(base, 0, 1), engine="columnar",
        )
        assert w.id_native
        assert w.engine is None  # no term-level engine is ever built
        w.bootstrap()
        serial = HorstReasoner(_mp_tbox()).materialize(data)
        assert set(w.output_graph()) == set(serial.graph)

    def test_async_inprocess_shuffle_matches_lockstep(self):
        tbox, data = _mp_tbox(), _mp_data()
        mixed = Graph(list(tbox) + list(data))
        ref = ParallelReasoner(tbox, k=3, encode_wire=True).materialize(mixed)
        res = ParallelReasoner(tbox, k=3, engine="columnar").materialize_async(
            mixed, delivery="shuffle")
        assert set(res.graph) == set(ref.graph)

    @pytest.mark.slow
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_multiprocess_id_native_matches_serial(self, start_method):
        tbox, data = _mp_tbox(), _mp_data()
        mixed = Graph(list(tbox) + list(data))
        serial = HorstReasoner(tbox).materialize(data)
        res = ParallelReasoner(tbox, k=2, engine="columnar").materialize_async(
            mixed, multiprocess=True, start_method=start_method)
        expect = set(serial.graph) | set(
            compile_ontology(tbox).schema) | set(tbox)
        assert set(res.graph) == expect
