"""Third property-test battery: serialization format round-trips and the
distributed-query equivalence, over arbitrary graphs."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.datalog.ast import Atom
from repro.parallel.query import DistributedQueryEngine
from repro.rdf import BGPQuery, Graph, Literal, Triple, URI
from repro.rdf.terms import BNode, Variable
from repro.rdf.turtle import parse_turtle_graph, serialize_turtle

_nodes = st.builds(lambda i: URI(f"http://n.org/{i}"), st.integers(0, 10))
_bnodes = st.builds(lambda i: BNode(f"b{i}"), st.integers(0, 4))
_subjects = _nodes | _bnodes
_predicates = st.builds(lambda s: URI("http://p.org/" + s),
                        st.sampled_from(["p", "q", "r"]))
_literals = st.builds(
    Literal,
    st.text(min_size=0, max_size=10),
    datatype=st.none() | st.just(URI("http://dt.org/t")),
)
_objects = _nodes | _bnodes | _literals
_triples = st.builds(Triple, _subjects, _predicates, _objects)
_graphs = st.builds(Graph, st.lists(_triples, max_size=30))


@given(_graphs)
@settings(max_examples=60, deadline=None)
def test_turtle_round_trip_property(graph):
    doc = serialize_turtle(graph, {"n": "http://n.org/", "p": "http://p.org/"})
    assert parse_turtle_graph(doc) == graph


@given(_graphs)
@settings(max_examples=40, deadline=None)
def test_turtle_round_trip_without_prefixes(graph):
    assert parse_turtle_graph(serialize_turtle(graph)) == graph


@given(_graphs, st.integers(2, 4), st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_distributed_query_equals_centralized(graph, k, pattern_seed):
    """Split a graph arbitrarily across k partitions (even with replicas);
    every BGP answers identically to the centralized evaluation."""
    partitions = [Graph() for _ in range(k)]
    for i, t in enumerate(sorted(graph, key=str)):
        partitions[i % k].add(t)
        if i % 3 == 0:  # replicate some triples, as Algorithm 1 does
            partitions[(i + 1) % k].add(t)

    x, y, z = Variable("x"), Variable("y"), Variable("z")
    pred = URI("http://p.org/" + ["p", "q", "r", "p"][pattern_seed])
    query = BGPQuery([Atom(x, pred, y), Atom(y, pred, z)])

    engine = DistributedQueryEngine(partitions)
    distributed = engine.select(query, x, z)
    centralized = query.select(graph, x, z)
    assert distributed == centralized
