"""Tests for scatter-gather BGP answering over partitioned KBs."""

import pytest

from repro.datalog.ast import Atom
from repro.datasets import LUBM
from repro.datasets.lubm_queries import LUBM_QUERIES
from repro.owl import HorstReasoner
from repro.parallel import ParallelReasoner
from repro.parallel.costmodel import CostModel
from repro.parallel.query import DistributedQueryEngine
from repro.rdf import BGPQuery, Graph, URI
from repro.rdf.terms import Variable

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def u(name):
    return URI(f"ex:{name}")


class TestBasics:
    def test_cross_partition_join(self):
        parts = [Graph(), Graph()]
        parts[0].add_spo(u("a"), u("p"), u("b"))
        parts[1].add_spo(u("b"), u("p"), u("c"))
        engine = DistributedQueryEngine(parts)
        q = BGPQuery([Atom(X, u("p"), Y), Atom(Y, u("p"), Z)])
        rows, stats = engine.execute(q)
        assert len(rows) == 1
        assert rows[0][X] == u("a") and rows[0][Z] == u("c")
        assert stats.patterns == 2
        assert stats.total_shipped >= 2

    def test_replicated_triples_counted_once(self):
        t = (u("a"), u("p"), u("b"))
        parts = [Graph(), Graph()]
        parts[0].add_spo(*t)
        parts[1].add_spo(*t)  # replica, as Algorithm 1 produces
        engine = DistributedQueryEngine(parts)
        rows, _ = engine.execute(BGPQuery([Atom(X, u("p"), Y)]))
        assert len(rows) == 1

    def test_ask_and_select(self):
        parts = [Graph([]), Graph()]
        parts[1].add_spo(u("a"), u("p"), u("b"))
        engine = DistributedQueryEngine(parts)
        q = BGPQuery([Atom(X, u("p"), Y)])
        assert engine.ask(q)
        assert engine.select(q, X) == [(u("a"),)]

    def test_empty_partition_list_rejected(self):
        with pytest.raises(ValueError):
            DistributedQueryEngine([])

    def test_modeled_gather_time_positive(self):
        parts = [Graph()]
        parts[0].add_spo(u("a"), u("p"), u("b"))
        engine = DistributedQueryEngine(parts)
        _, stats = engine.execute(BGPQuery([Atom(X, u("p"), Y)]))
        assert stats.modeled_gather_time(CostModel.file_ipc()) > 0


class TestAgainstCentralized:
    @pytest.fixture(scope="class")
    def partitioned_kb(self):
        ds = LUBM(2, seed=0, departments_per_university=2,
                  faculty_per_department=2, students_per_faculty=3,
                  cross_university_fraction=0.0)
        pr = ParallelReasoner(ds.ontology, k=3, approach="data")
        result = pr.materialize(ds.data)
        centralized = HorstReasoner(ds.ontology).materialize(ds.data).graph
        return result.node_outputs, centralized

    def test_every_lubm_query_matches_centralized(self, partitioned_kb):
        node_outputs, centralized = partitioned_kb
        engine = DistributedQueryEngine(node_outputs)
        for query in LUBM_QUERIES:
            bgp = query.parse().bgp
            variables = tuple(sorted(bgp.variables(), key=lambda v: v.name))
            distributed = engine.select(bgp, *variables)
            central = bgp.select(centralized, *variables)
            assert distributed == central, query.name

    def test_stats_track_partition_probes(self, partitioned_kb):
        node_outputs, _ = partitioned_kb
        engine = DistributedQueryEngine(node_outputs)
        q6 = next(q for q in LUBM_QUERIES if q.name == "Q6").parse().bgp
        _, stats = engine.execute(q6)
        assert len(stats.probes_per_partition) == len(node_outputs)
        assert sum(stats.probes_per_partition) > 0
