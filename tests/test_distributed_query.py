"""Tests for scatter-gather BGP answering over partitioned KBs."""

import pytest

from repro.datalog.ast import Atom
from repro.datasets import LUBM
from repro.datasets.lubm_queries import LUBM_QUERIES
from repro.owl import HorstReasoner
from repro.parallel import ParallelReasoner
from repro.parallel.costmodel import CostModel
from repro.parallel.query import DistributedQueryEngine
from repro.rdf import BGPQuery, Graph, URI
from repro.rdf.terms import Variable

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def u(name):
    return URI(f"ex:{name}")


class TestBasics:
    def test_cross_partition_join(self):
        parts = [Graph(), Graph()]
        parts[0].add_spo(u("a"), u("p"), u("b"))
        parts[1].add_spo(u("b"), u("p"), u("c"))
        engine = DistributedQueryEngine(parts)
        q = BGPQuery([Atom(X, u("p"), Y), Atom(Y, u("p"), Z)])
        rows, stats = engine.execute(q)
        assert len(rows) == 1
        assert rows[0][X] == u("a") and rows[0][Z] == u("c")
        assert stats.patterns == 2
        assert stats.total_shipped >= 2

    def test_replicated_triples_counted_once(self):
        t = (u("a"), u("p"), u("b"))
        parts = [Graph(), Graph()]
        parts[0].add_spo(*t)
        parts[1].add_spo(*t)  # replica, as Algorithm 1 produces
        engine = DistributedQueryEngine(parts)
        rows, _ = engine.execute(BGPQuery([Atom(X, u("p"), Y)]))
        assert len(rows) == 1

    def test_ask_and_select(self):
        parts = [Graph([]), Graph()]
        parts[1].add_spo(u("a"), u("p"), u("b"))
        engine = DistributedQueryEngine(parts)
        q = BGPQuery([Atom(X, u("p"), Y)])
        assert engine.ask(q)
        assert engine.select(q, X) == [(u("a"),)]

    def test_empty_partition_list_rejected(self):
        with pytest.raises(ValueError):
            DistributedQueryEngine([])

    def test_modeled_gather_time_positive(self):
        parts = [Graph()]
        parts[0].add_spo(u("a"), u("p"), u("b"))
        engine = DistributedQueryEngine(parts)
        _, stats = engine.execute(BGPQuery([Atom(X, u("p"), Y)]))
        assert stats.modeled_gather_time(CostModel.file_ipc()) > 0


class TestAgainstCentralized:
    @pytest.fixture(scope="class")
    def partitioned_kb(self):
        ds = LUBM(2, seed=0, departments_per_university=2,
                  faculty_per_department=2, students_per_faculty=3,
                  cross_university_fraction=0.0)
        pr = ParallelReasoner(ds.ontology, k=3, approach="data")
        result = pr.materialize(ds.data)
        centralized = HorstReasoner(ds.ontology).materialize(ds.data).graph
        return result.node_outputs, centralized

    def test_every_lubm_query_matches_centralized(self, partitioned_kb):
        node_outputs, centralized = partitioned_kb
        engine = DistributedQueryEngine(node_outputs)
        for query in LUBM_QUERIES:
            bgp = query.parse().bgp
            variables = tuple(sorted(bgp.variables(), key=lambda v: v.name))
            distributed = engine.select(bgp, *variables)
            central = bgp.select(centralized, *variables)
            assert distributed == central, query.name

    def test_stats_track_partition_probes(self, partitioned_kb):
        node_outputs, _ = partitioned_kb
        engine = DistributedQueryEngine(node_outputs)
        q6 = next(q for q in LUBM_QUERIES if q.name == "Q6").parse().bgp
        _, stats = engine.execute(q6)
        assert len(stats.probes_per_partition) == len(node_outputs)
        assert sum(stats.probes_per_partition) > 0


class TestIdNativeFastPath:
    """The worker-resident fast path: semi-join pruned, id-encoded wire,
    measured payload bytes."""

    @pytest.fixture(scope="class")
    def cluster(self):
        ds = LUBM(2, seed=0, departments_per_university=2,
                  faculty_per_department=2, students_per_faculty=3,
                  cross_university_fraction=0.0)
        pr = ParallelReasoner(ds.ontology, k=3, approach="data",
                              engine="columnar", encode_wire=True)
        result = pr.materialize(ds.data)
        centralized = HorstReasoner(ds.ontology).materialize(ds.data).graph
        return result, centralized

    def test_every_lubm_query_matches_centralized(self, cluster):
        result, centralized = cluster
        engine = DistributedQueryEngine.from_workers(result.workers)
        assert engine.workers is not None
        for query in LUBM_QUERIES:
            bgp = query.parse().bgp
            variables = tuple(sorted(bgp.variables(), key=lambda v: v.name))
            assert engine.select(bgp, *variables) == \
                bgp.select(centralized, *variables), query.name

    def test_ask(self, cluster):
        result, _ = cluster
        engine = DistributedQueryEngine.from_workers(result.workers)
        q6 = next(q for q in LUBM_QUERIES if q.name == "Q6").parse().bgp
        assert engine.ask(q6) is True
        assert engine.ask(BGPQuery([Atom(X, u("no-such-p"), Y)])) is False

    def test_bindings_restrict(self, cluster):
        result, centralized = cluster
        engine = DistributedQueryEngine.from_workers(result.workers)
        q6 = next(q for q in LUBM_QUERIES if q.name == "Q6").parse().bgp
        all_rows, _ = engine.execute(q6)
        first = all_rows[0]
        var, term = next(iter(first.items()))
        bound_rows, _ = engine.execute(q6, bindings={var: term})
        assert 0 < len(bound_rows) < len(all_rows)
        assert all(row[var] == term for row in bound_rows)

    def test_unknown_binding_term_rejected(self, cluster):
        result, _ = cluster
        engine = DistributedQueryEngine.from_workers(result.workers)
        q6 = next(q for q in LUBM_QUERIES if q.name == "Q6").parse().bgp
        var = next(iter(q6.variables()))
        with pytest.raises(ValueError, match="base dictionary"):
            engine.execute(q6, bindings={var: u("never-seen-term")})

    def test_semi_join_ships_no_more_than_term_path(self, cluster):
        result, _ = cluster
        id_engine = DistributedQueryEngine.from_workers(result.workers)
        term_engine = DistributedQueryEngine(result.node_outputs)
        for name in ("Q2", "Q9"):
            bgp = next(q for q in LUBM_QUERIES if q.name == name).parse().bgp
            _, id_stats = id_engine.execute(bgp)
            _, term_stats = term_engine.execute(bgp)
            assert id_stats.total_shipped <= term_stats.total_shipped, name

    def test_measured_payload_bytes(self, cluster):
        result, _ = cluster
        engine = DistributedQueryEngine.from_workers(result.workers)
        q2 = next(q for q in LUBM_QUERIES if q.name == "Q2").parse().bgp
        _, stats = engine.execute(q2)
        assert len(stats.payload_bytes_per_pattern) == stats.patterns
        assert stats.total_payload_bytes > 0
        # measured payload feeds the gather model (no 80 B/solution guess)
        model = CostModel.file_ipc()
        messages = len(stats.probes_per_partition) * stats.patterns
        assert stats.modeled_gather_time(model) == model.transfer_time(
            stats.total_payload_bytes, messages)

    def test_term_workers_rejected(self):
        ds = LUBM(1, seed=0, departments_per_university=1,
                  faculty_per_department=1, students_per_faculty=1)
        pr = ParallelReasoner(ds.ontology, k=2, approach="data")
        result = pr.materialize(ds.data)
        with pytest.raises(ValueError, match="id-native"):
            DistributedQueryEngine.from_workers(result.workers)

    def test_workers_and_partitions_mutually_exclusive(self, cluster):
        result, _ = cluster
        with pytest.raises(ValueError, match="not both"):
            DistributedQueryEngine(
                result.node_outputs, workers=result.workers)
        with pytest.raises(ValueError, match="at least one worker"):
            DistributedQueryEngine(workers=[])


class TestUnderForkAndSpawn:
    """The distributed read path against closures produced by real OS
    processes under both multiprocessing start methods (satellite of the
    serving PR: the resident tier must agree with what fork/spawn
    clusters compute)."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return LUBM(1, seed=0, departments_per_university=1,
                    faculty_per_department=2, students_per_faculty=2)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_id_engine_agrees_with_multiprocess_closure(
            self, dataset, start_method):
        ds = dataset
        pr = ParallelReasoner(ds.ontology, k=2, approach="data",
                              engine="columnar", encode_wire=True)
        mp_result = pr.materialize_async(
            ds.data, multiprocess=True, start_method=start_method)
        # multiprocess workers died with their processes — no fast path
        assert mp_result.workers == []
        resident = pr.materialize(ds.data)
        engine = DistributedQueryEngine.from_workers(resident.workers)
        for query in LUBM_QUERIES:
            bgp = query.parse().bgp
            variables = tuple(sorted(bgp.variables(), key=lambda v: v.name))
            assert engine.select(bgp, *variables) == \
                bgp.select(mp_result.graph, *variables), query.name
            assert engine.ask(bgp) == bgp.ask(mp_result.graph), query.name
