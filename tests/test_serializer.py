"""Tests for rule serialization (parser inverse)."""

import pytest

from repro.datalog.parser import parse_rule, parse_rules
from repro.datalog.serializer import (
    HORST_PREFIXES,
    atom_to_text,
    rule_to_text,
    rules_to_document,
)
from repro.owl.rules_horst import horst_raw_rules
from repro.rdf import Literal, URI
from repro.rdf.terms import BNode, Variable


class TestTermRendering:
    def test_prefixed_when_possible(self):
        r = parse_rule("@prefix ex: <http://x.org/>\n"
                       "[t: (?a ex:p ?b) -> (?b ex:p ?a)]")
        text = rule_to_text(r, {"ex": "http://x.org/"})
        assert "ex:p" in text and "<http://x.org/p>" not in text

    def test_absolute_when_no_prefix_matches(self):
        r = parse_rule("@prefix ex: <http://x.org/>\n"
                       "[t: (?a ex:p ?b) -> (?b ex:p ?a)]")
        text = rule_to_text(r)
        assert "<http://x.org/p>" in text

    def test_hyphenated_local_names_allowed(self):
        from repro.datalog.ast import Atom

        atom = Atom(Variable("a"), URI("http://x.org/sub-prop"), Variable("b"))
        assert atom_to_text(atom, {"ex": "http://x.org/"}) == "(?a ex:sub-prop ?b)"

    def test_nonidentifier_local_falls_back_to_absolute(self):
        from repro.datalog.ast import Atom

        atom = Atom(Variable("a"), URI("http://x.org/1bad local"), Variable("b"))
        assert "<http://x.org/1bad local>" in atom_to_text(
            atom, {"ex": "http://x.org/"}
        )

    def test_literal_and_bnode(self):
        from repro.datalog.ast import Atom

        atom = Atom(BNode("n"), URI("ex:p"), Literal('v"q', language="en"))
        text = atom_to_text(atom)
        assert text == '(_:n <ex:p> "v\\"q"@en)'


class TestRoundTrip:
    def test_horst_rules_round_trip(self):
        rules = horst_raw_rules()
        doc = rules_to_document(rules, HORST_PREFIXES)
        reparsed = parse_rules(doc)
        assert [(r.name, r.body, r.head) for r in reparsed] == [
            (r.name, r.body, r.head) for r in rules
        ]

    def test_compiled_rules_round_trip(self):
        from repro.datasets import LUBM
        from repro.owl.compiler import compile_ontology

        crs = compile_ontology(LUBM(1).ontology)
        doc = rules_to_document(crs.rules, HORST_PREFIXES)
        reparsed = parse_rules(doc)
        assert len(reparsed) == len(crs.rules)
        for a, b in zip(crs.rules, reparsed):
            assert (a.body, a.head) == (b.body, b.head)

    def test_header_comments_preserved_as_comments(self):
        rules = horst_raw_rules()[:2]
        doc = rules_to_document(rules, HORST_PREFIXES, header="line one\nline two")
        assert doc.startswith("# line one\n# line two\n")
        assert len(parse_rules(doc)) == 2
