"""Unit tests for N-Triples parsing and serialization, including the
malformed-input failure paths."""

import pytest

from repro.rdf import (
    BNode,
    Graph,
    Literal,
    NTriplesParseError,
    Triple,
    URI,
    parse_ntriples,
    parse_ntriples_line,
    serialize_ntriples,
    triple_to_ntriples,
)


class TestParsing:
    def test_simple_triple(self):
        t = parse_ntriples_line("<ex:a> <ex:p> <ex:b> .")
        assert t == Triple(URI("ex:a"), URI("ex:p"), URI("ex:b"))

    def test_plain_literal(self):
        t = parse_ntriples_line('<ex:a> <ex:p> "hello" .')
        assert t.o == Literal("hello")

    def test_language_literal(self):
        t = parse_ntriples_line('<ex:a> <ex:p> "bonjour"@fr .')
        assert t.o == Literal("bonjour", language="fr")

    def test_datatyped_literal(self):
        t = parse_ntriples_line('<ex:a> <ex:p> "1"^^<ex:int> .')
        assert t.o == Literal("1", datatype=URI("ex:int"))

    def test_bnode_subject_and_object(self):
        t = parse_ntriples_line("_:s <ex:p> _:o .")
        assert t.s == BNode("s")
        assert t.o == BNode("o")

    def test_escapes(self):
        t = parse_ntriples_line(r'<ex:a> <ex:p> "tab\there\nnl \"q\" \\ done" .')
        assert t.o.lexical == 'tab\there\nnl "q" \\ done'

    def test_unicode_escape(self):
        t = parse_ntriples_line(r'<ex:a> <ex:p> "é\U0001F600" .')
        assert t.o.lexical == "é\U0001F600"

    def test_blank_lines_and_comments_skipped(self):
        doc = "\n# a comment\n<ex:a> <ex:p> <ex:b> .\n\n"
        assert len(list(parse_ntriples(doc))) == 1

    def test_extra_whitespace_tolerated(self):
        t = parse_ntriples_line("  <ex:a>   <ex:p>\t<ex:b>   .  ")
        assert t is not None


class TestMalformed:
    @pytest.mark.parametrize(
        "line",
        [
            "<ex:a> <ex:p> <ex:b>",  # missing dot
            "<ex:a> <ex:p> .",  # missing object
            "<ex:a <ex:p> <ex:b> .",  # unterminated IRI
            '<ex:a> <ex:p> "open .',  # unterminated literal
            "<ex:a> <ex:p> <ex:b> . trailing",  # junk after dot
            '"lit" <ex:p> <ex:b> .',  # literal subject
            "<ex:a> _:b <ex:c> .",  # bnode predicate
            r'<ex:a> <ex:p> "\q" .',  # unknown escape
            r'<ex:a> <ex:p> "\u12" .',  # truncated \u
            "<ex:a> <ex:p> <ex b> .",  # space inside IRI
            "_: <ex:p> <ex:b> .",  # empty bnode label
            '<ex:a> <ex:p> "x"@ .',  # empty language tag
        ],
    )
    def test_raises_parse_error(self, line):
        with pytest.raises(NTriplesParseError):
            parse_ntriples_line(line)

    def test_error_carries_line_number(self):
        doc = "<ex:a> <ex:p> <ex:b> .\nBROKEN\n"
        with pytest.raises(NTriplesParseError, match="line 2"):
            list(parse_ntriples(doc))


class TestRoundTrip:
    def test_graph_round_trip(self):
        g = Graph()
        g.add_spo(URI("ex:a"), URI("ex:p"), URI("ex:b"))
        g.add_spo(URI("ex:a"), URI("ex:p"), Literal('with "quotes"\n'))
        g.add_spo(BNode("n1"), URI("ex:p"), Literal("x", language="en"))
        g.add_spo(URI("ex:a"), URI("ex:p"), Literal("1", datatype=URI("ex:int")))
        doc = serialize_ntriples(g)
        assert Graph(parse_ntriples(doc)) == g

    def test_sorted_serialization_is_canonical(self):
        t1 = Triple(URI("ex:a"), URI("ex:p"), URI("ex:b"))
        t2 = Triple(URI("ex:c"), URI("ex:p"), URI("ex:d"))
        assert serialize_ntriples([t1, t2], sort=True) == serialize_ntriples(
            [t2, t1], sort=True
        )

    def test_single_triple_form(self):
        t = Triple(URI("ex:a"), URI("ex:p"), URI("ex:b"))
        assert triple_to_ntriples(t) == "<ex:a> <ex:p> <ex:b> ."
