"""Unit tests for atoms, rules, matching, and substitution."""

import pytest

from repro.datalog.ast import Atom, Rule, rules_by_name
from repro.rdf import Triple, URI
from repro.rdf.terms import Literal, Variable

X, Y, Z = Variable("x"), Variable("y"), Variable("z")
P = URI("ex:p")


class TestAtom:
    def test_variables(self):
        assert Atom(X, P, Y).variables() == {X, Y}

    def test_is_ground(self):
        assert Atom(URI("ex:a"), P, URI("ex:b")).is_ground()
        assert not Atom(X, P, URI("ex:b")).is_ground()

    def test_substitute_partial(self):
        a = Atom(X, P, Y).substitute({X: URI("ex:a")})
        assert a == Atom(URI("ex:a"), P, Y)

    def test_substitute_follows_chains(self):
        a = Atom(X, P, Y).substitute({X: Y, Y: URI("ex:g")})
        assert a.s == URI("ex:g")

    def test_to_triple_requires_ground(self):
        with pytest.raises(ValueError):
            Atom(X, P, Y).to_triple({X: URI("ex:a")})

    def test_to_triple(self):
        t = Atom(X, P, Y).to_triple({X: URI("ex:a"), Y: URI("ex:b")})
        assert t == Triple(URI("ex:a"), P, URI("ex:b"))

    def test_from_triple_round_trip(self):
        t = Triple(URI("ex:a"), P, URI("ex:b"))
        assert Atom.from_triple(t).to_triple() == t

    def test_non_term_rejected(self):
        with pytest.raises(TypeError):
            Atom("ex:a", P, Y)

    def test_immutable(self):
        a = Atom(X, P, Y)
        with pytest.raises(AttributeError):
            a.s = Y


class TestMatchTriple:
    def test_basic_binding(self):
        b = Atom(X, P, Y).match_triple(Triple(URI("ex:a"), P, URI("ex:b")))
        assert b == {X: URI("ex:a"), Y: URI("ex:b")}

    def test_ground_mismatch(self):
        a = Atom(URI("ex:other"), P, Y)
        assert a.match_triple(Triple(URI("ex:a"), P, URI("ex:b"))) is None

    def test_repeated_variable_must_agree(self):
        a = Atom(X, P, X)
        assert a.match_triple(Triple(URI("ex:a"), P, URI("ex:b"))) is None
        assert a.match_triple(Triple(URI("ex:a"), P, URI("ex:a"))) is not None

    def test_existing_bindings_respected(self):
        a = Atom(X, P, Y)
        t = Triple(URI("ex:a"), P, URI("ex:b"))
        assert a.match_triple(t, {X: URI("ex:zz")}) is None
        extended = a.match_triple(t, {X: URI("ex:a")})
        assert extended[Y] == URI("ex:b")

    def test_does_not_mutate_input_bindings(self):
        a = Atom(X, P, Y)
        start = {X: URI("ex:a")}
        a.match_triple(Triple(URI("ex:a"), P, URI("ex:b")), start)
        assert start == {X: URI("ex:a")}

    def test_unify_atom_ground_conflict(self):
        assert not Atom(URI("ex:a"), P, X).unify_atom(Atom(URI("ex:b"), P, Y))
        assert Atom(URI("ex:a"), P, X).unify_atom(Atom(Y, P, Z))


class TestRule:
    def test_safety_enforced(self):
        with pytest.raises(ValueError, match="unsafe"):
            Rule("bad", [Atom(X, P, Y)], Atom(X, P, Z))

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            Rule("empty", [], Atom(X, P, X))

    def test_arity(self):
        r = Rule("r", [Atom(X, P, Y), Atom(Y, P, Z)], Atom(X, P, Z))
        assert r.arity == 2

    def test_variables(self):
        r = Rule("r", [Atom(X, P, Y), Atom(Y, P, Z)], Atom(X, P, Z))
        assert r.variables() == {X, Y, Z}

    def test_rename_variables(self):
        r = Rule("r", [Atom(X, P, Y)], Atom(X, P, Y)).rename_variables("7")
        assert r.variables() == {Variable("x_7"), Variable("y_7")}

    def test_predicates(self):
        r = Rule("r", [Atom(X, P, Y)], Atom(X, URI("ex:q"), Y))
        assert r.predicates() == {P, URI("ex:q")}

    def test_str_form(self):
        r = Rule("r", [Atom(X, P, Y)], Atom(Y, P, X))
        assert str(r) == "[r: (?x <ex:p> ?y) -> (?y <ex:p> ?x)]"

    def test_immutable(self):
        r = Rule("r", [Atom(X, P, Y)], Atom(Y, P, X))
        with pytest.raises(AttributeError):
            r.name = "other"

    def test_literal_in_body_allowed(self):
        Rule("r", [Atom(X, P, Literal("true"))], Atom(X, P, X))


def test_rules_by_name_rejects_duplicates():
    r1 = Rule("dup", [Atom(X, P, Y)], Atom(Y, P, X))
    r2 = Rule("dup", [Atom(X, P, Y)], Atom(X, P, X))
    with pytest.raises(ValueError, match="duplicate"):
        rules_by_name([r1, r2])
