"""Property-based tests (hypothesis) on the core invariants.

The properties are the ones DESIGN.md commits to:

* store index coherence under arbitrary add/discard sequences;
* N-Triples round-tripping for arbitrary term content;
* partition placement invariants (owners, copy counts, join co-location);
* the headline correctness claim — parallel closure == serial closure —
  over random graphs and random single-join rule sets;
* forward/backward engine agreement.
"""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st

from repro.datalog import NaiveEngine, SemiNaiveEngine
from repro.datalog.ast import Atom, Rule
from repro.datalog.backward import materialize_backward
from repro.owl.vocabulary import OWL, RDF
from repro.parallel import ParallelReasoner
from repro.partitioning import HashPartitioningPolicy, partition_data
from repro.rdf import (
    Graph,
    Literal,
    Triple,
    URI,
    parse_ntriples,
    serialize_ntriples,
)
from repro.rdf.terms import Variable

# --- strategies -------------------------------------------------------------

_name = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1,
                max_size=6)

uris = st.builds(lambda s: URI("ex:" + s), _name)
predicates = st.builds(lambda s: URI("p:" + s),
                       st.sampled_from(["p", "q", "r", "s"]))
literals = st.builds(
    Literal,
    st.text(min_size=0, max_size=12),
    datatype=st.none() | st.just(URI("ex:dt")),
)
objects = uris | literals
triples = st.builds(Triple, uris, predicates, objects)
graphs = st.builds(Graph, st.lists(triples, max_size=40))

# Small vocabulary so random graphs actually join.
_small_nodes = st.builds(lambda i: URI(f"n:{i}"), st.integers(0, 12))
small_triples = st.builds(Triple, _small_nodes, predicates, _small_nodes)
small_graphs = st.builds(Graph, st.lists(small_triples, max_size=30))


@st.composite
def single_join_rules(draw):
    """A random safe zero-join or single-join rule over the small predicate
    vocabulary, joining on subject/object positions only."""
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    p1 = draw(predicates)
    if draw(st.booleans()):
        # zero-join: (x p1 y) -> head over {x, y}
        head_p = draw(predicates)
        head = draw(st.sampled_from([Atom(x, head_p, y), Atom(y, head_p, x)]))
        return Rule("zj", [Atom(x, p1, y)], head)
    p2 = draw(predicates)
    head_p = draw(predicates)
    # single-join through y, in one of the subject/object combinations.
    body = draw(
        st.sampled_from(
            [
                [Atom(x, p1, y), Atom(y, p2, z)],
                [Atom(x, p1, y), Atom(z, p2, y)],
                [Atom(y, p1, x), Atom(y, p2, z)],
            ]
        )
    )
    head = draw(st.sampled_from([Atom(x, head_p, z), Atom(z, head_p, x)]))
    return Rule("sj", body, head)


# --- store properties --------------------------------------------------------

@given(st.lists(triples, max_size=40), st.lists(triples, max_size=20))
def test_graph_indexes_stay_coherent(to_add, to_discard):
    g = Graph()
    for t in to_add:
        g.add(t)
    for t in to_discard:
        g.discard(t)
    g.check_integrity()
    survivors = set(to_add) - set(to_discard)
    assert set(g) == survivors


@given(graphs)
def test_match_agrees_with_scan(g):
    for t in list(g)[:5]:
        assert t in set(g.match(t.s, None, None))
        assert t in set(g.match(None, t.p, None))
        assert t in set(g.match(None, None, t.o))
        assert set(g.match(t.s, t.p, t.o)) == {t}


@given(graphs)
def test_ntriples_round_trip(g):
    assert Graph(parse_ntriples(serialize_ntriples(g))) == g


@given(graphs)
def test_graph_copy_equals_original(g):
    assert g.copy() == g


# --- partitioning properties --------------------------------------------------

@given(small_graphs, st.integers(2, 5))
@settings(max_examples=40)
def test_partition_placement_invariants(g, k):
    result = partition_data(g, HashPartitioningPolicy(), k)
    union = Graph()
    for p in result.partitions:
        union.update(iter(p))
    # 1. Nothing lost, nothing invented.
    assert union == g
    # 2. Each triple on its owners, and on at most two partitions.
    owner = result.owner
    for t in g:
        copies = sum(t in p for p in result.partitions)
        assert 1 <= copies <= 2
        assert t in result.partitions[owner(t.s)]


@given(small_graphs, st.integers(2, 4))
@settings(max_examples=40)
def test_join_candidates_colocated(g, k):
    """Any two triples sharing a non-vocabulary resource (as s/o) have a
    common partition — the single-join correctness precondition."""
    result = partition_data(g, HashPartitioningPolicy(), k)
    owner = result.owner
    for t in g:
        for r in (t.s, t.o):
            if r.is_literal or r in result.vocabulary:
                continue
            assert t in result.partitions[owner(r)]


# --- engine properties ---------------------------------------------------------

@given(small_graphs, st.lists(single_join_rules(), min_size=1, max_size=3))
@settings(max_examples=30, deadline=None)
def test_semi_naive_equals_naive(g, rules):
    rules = [Rule(f"r{i}", r.body, r.head) for i, r in enumerate(rules)]
    g1, g2 = g.copy(), g.copy()
    SemiNaiveEngine(rules).run(g1)
    NaiveEngine(rules).run(g2)
    assert g1 == g2


@given(small_graphs, st.lists(single_join_rules(), min_size=1, max_size=2))
@settings(max_examples=15, deadline=None)
def test_backward_materialization_equals_forward(g, rules):
    rules = [Rule(f"r{i}", r.body, r.head) for i, r in enumerate(rules)]
    forward = g.copy()
    SemiNaiveEngine(rules).run(forward)
    backward, _ = materialize_backward(g, rules, candidate_probing=False)
    assert backward == forward


# --- the headline property -------------------------------------------------------

@given(small_graphs, st.integers(2, 4), st.booleans())
@settings(max_examples=15, deadline=None)
def test_parallel_closure_equals_serial(g, k, transitive):
    """Random instance data + a small ontology, closed serially and in
    parallel (data partitioning): identical closures."""
    tbox = Graph()
    tbox.add_spo(URI("p:p"), RDF.type, OWL.SymmetricProperty)
    if transitive:
        tbox.add_spo(URI("p:q"), RDF.type, OWL.TransitiveProperty)

    from repro.owl import HorstReasoner

    serial = HorstReasoner(tbox).materialize(g).graph
    pr = ParallelReasoner(tbox, k=k, approach="data",
                          policy=HashPartitioningPolicy())
    parallel = pr.materialize(g)
    instance = Graph(t for t in parallel.graph if t not in pr.compiled.schema)
    assert instance == serial
