"""Differential tests: the id-native vectorized BGP engine
(:mod:`repro.rdf.idquery`) against the term-level :class:`BGPQuery` oracle
— random graphs via hypothesis, the full LUBM battery, and probe-count
equality under ``ordering="bound"``."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog.ast import Atom
from repro.datasets import LUBM
from repro.datasets.lubm_queries import LUBM_QUERIES
from repro.owl import MaterializedKB
from repro.rdf import BGPQuery, Graph, URI
from repro.rdf.idquery import IdBGPQuery, IdIndex, join_pattern
from repro.rdf.idstore import IdGraph
from repro.rdf.terms import Variable

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def u(name):
    return URI(f"ex:{name}")


def rows_of(solutions, variables):
    """Order-insensitive comparable form of a solution list."""
    return sorted(
        tuple(sol[v] for v in variables) for sol in solutions
    )


@pytest.fixture
def graph():
    g = Graph()
    g.add_spo(u("alice"), u("knows"), u("bob"))
    g.add_spo(u("bob"), u("knows"), u("carol"))
    g.add_spo(u("alice"), u("age"), u("n42"))
    g.add_spo(u("carol"), u("age"), u("n42"))
    return g


class TestIdBGPQuery:
    def test_matches_term_engine(self, graph):
        q = [Atom(X, u("knows"), Y), Atom(Y, u("knows"), Z)]
        expected = rows_of(BGPQuery(q).execute(graph), (X, Y, Z))
        got = rows_of(IdIndex(graph).execute(q), (X, Y, Z))
        assert got == expected == [(u("alice"), u("bob"), u("carol"))]

    def test_unknown_constant_short_circuits(self, graph):
        index = IdIndex(graph)
        _, stats = index.execute_with_stats([Atom(X, u("nope"), Y)])
        assert stats.solutions == 0
        assert stats.index_probes == 0

    def test_repeated_variable_filter(self, graph):
        graph.add_spo(u("dave"), u("knows"), u("dave"))
        q = [Atom(X, u("knows"), X)]
        expected = rows_of(BGPQuery(q).execute(graph), (X,))
        assert rows_of(IdIndex(graph).execute(q), (X,)) == expected
        assert expected == [(u("dave"),)]

    def test_initial_bindings(self, graph):
        q = [Atom(X, u("knows"), Y)]
        got = IdIndex(graph).execute(q, bindings={X: u("bob")})
        assert rows_of(got, (X, Y)) == [(u("bob"), u("carol"))]

    def test_unknown_binding_term_is_empty(self, graph):
        got = IdIndex(graph).execute(
            [Atom(X, u("knows"), Y)], bindings={X: u("nobody")})
        assert got == []

    def test_select_sorted_distinct(self, graph):
        q = [Atom(X, u("age"), Y)]
        index = IdIndex(graph)
        assert index.select(q, Y) == [(u("n42"),)]
        assert index.select(q, X, Y) == BGPQuery(q).select(graph, X, Y)

    def test_select_validates_projection(self, graph):
        index = IdIndex(graph)
        with pytest.raises(ValueError, match="not in query"):
            index.select([Atom(X, u("knows"), Y)], Z)
        with pytest.raises(ValueError, match="at least one"):
            index.select([Atom(X, u("knows"), Y)])

    def test_ask_and_count(self, graph):
        index = IdIndex(graph)
        assert index.ask([Atom(u("alice"), u("knows"), u("bob"))]) is True
        assert index.ask([Atom(u("bob"), u("knows"), u("alice"))]) is False
        assert index.count([Atom(X, u("age"), Y)]) == 2

    def test_no_items_pattern_is_cartesian(self, graph):
        # (?x ?y ?z) after a bound pattern: full-store cross product
        q = [Atom(u("alice"), u("knows"), X), Atom(Y, Z, Variable("w"))]
        expected = rows_of(BGPQuery(q).execute(graph), (X, Y, Z))
        assert rows_of(IdIndex(graph).execute(q), (X, Y, Z)) == expected

    def test_constructor_validation(self, graph):
        index = IdIndex(graph)
        dictionary, _store = index.current()
        with pytest.raises(ValueError, match="at least one pattern"):
            IdBGPQuery([], dictionary)
        with pytest.raises(TypeError, match="must be an Atom"):
            IdBGPQuery(["nope"], dictionary)
        with pytest.raises(ValueError, match="ordering"):
            IdBGPQuery([Atom(X, Y, Z)], dictionary, ordering="bogus")

    def test_bound_ordering_matches_term_probe_counts(self, graph):
        q = [Atom(X, u("knows"), Y), Atom(Y, u("age"), Z)]
        _, term_stats = BGPQuery(q).execute_with_stats(graph)
        _, id_stats = IdIndex(graph, ordering="bound").execute_with_stats(q)
        assert id_stats.index_probes == term_stats.index_probes
        assert id_stats.solutions == term_stats.solutions


class TestJoinPattern:
    """The shared kernel, driven directly (as the distributed
    coordinator does)."""

    def test_extends_env(self):
        store = IdGraph()
        store.add_rows(
            np.asarray([1, 1, 2], dtype=np.int64),
            np.asarray([7, 7, 7], dtype=np.int64),
            np.asarray([2, 3, 3], dtype=np.int64),
        )
        env = {X: np.asarray([1], dtype=np.int64)}
        env, n, probes = join_pattern(
            store, Atom(X, u("p"), Y), env, 1, {u("p"): 7}.get)
        assert n == 2 and probes == 2
        assert sorted(env[Y].tolist()) == [2, 3]

    def test_dead_constant(self):
        store = IdGraph()
        env, n, probes = join_pattern(
            store, Atom(X, u("gone"), Y), {}, 1, {}.get)
        assert (n, probes) == (0, 0) and env == {}


class TestIdIndex:
    def test_rebuilds_on_graph_version(self, graph):
        index = IdIndex(graph)
        q = [Atom(X, u("knows"), Y)]
        assert index.count(q) == 2
        first = index.current()
        assert index.current() is first  # cached while version unchanged
        graph.add_spo(u("carol"), u("knows"), u("dave"))
        assert index.count(q) == 3  # transparently rebuilt
        assert index.current() is not first

    def test_run_store_matches_dense(self, graph):
        q = [Atom(X, u("knows"), Y), Atom(Y, u("age"), Z)]
        dense = IdIndex(graph, store="dense")
        run = IdIndex(graph, store="run")
        assert rows_of(run.execute(q), (X, Y, Z)) == \
            rows_of(dense.execute(q), (X, Y, Z))

    def test_store_kind_validated(self, graph):
        with pytest.raises(ValueError, match="dense"):
            IdIndex(graph, store="columnar")

    def test_kb_id_index_is_cached_and_invalidated(self):
        from repro.rdf.triple import Triple

        kb = MaterializedKB(Graph())
        kb.add([Triple(u("a"), u("p"), u("b"))])
        index = kb.id_index()
        assert kb.id_index() is index
        assert index.count([Atom(X, u("p"), Y)]) == 1
        kb.add([Triple(u("b"), u("p"), u("c"))])
        # same index object, fresh mirror (version-keyed)
        assert kb.id_index() is index
        assert index.count([Atom(X, u("p"), Y)]) == 2


# -- hypothesis: random graphs, random conjunctive queries -------------------

_terms = st.integers(min_value=0, max_value=5).map(lambda i: u(f"t{i}"))
_vars = st.sampled_from([X, Y, Z])
_slot = st.one_of(_vars, _terms)
_atoms = st.builds(Atom, _slot, _slot, _slot)
_triples = st.tuples(_terms, _terms, _terms)


@settings(max_examples=60, deadline=None)
@given(
    triples=st.lists(_triples, max_size=25),
    patterns=st.lists(_atoms, min_size=1, max_size=3),
)
def test_random_differential(triples, patterns):
    g = Graph()
    for s, p, o in triples:
        g.add_spo(s, p, o)
    variables = tuple(sorted(
        {v for pat in patterns for v in pat.variables()},
        key=lambda v: v.name))
    expected = rows_of(BGPQuery(patterns).execute(g), variables)
    for store in ("dense", "run"):
        got = rows_of(IdIndex(g, store=store).execute(patterns), variables)
        assert got == expected, store


@settings(max_examples=30, deadline=None)
@given(
    triples=st.lists(_triples, min_size=1, max_size=25),
    patterns=st.lists(_atoms, min_size=1, max_size=3),
)
def test_random_probe_count_equality(triples, patterns):
    """Under ordering="bound" the vectorized engine does the same probe
    work as the term engine — same join order, same candidate rows."""
    g = Graph()
    for s, p, o in triples:
        g.add_spo(s, p, o)
    _, term_stats = BGPQuery(patterns).execute_with_stats(g)
    _, id_stats = IdIndex(g, ordering="bound").execute_with_stats(patterns)
    assert id_stats.index_probes == term_stats.index_probes
    assert id_stats.solutions == term_stats.solutions


# -- the LUBM battery ---------------------------------------------------------

class TestLUBMBattery:
    @pytest.fixture(scope="class")
    def kb(self):
        ds = LUBM(2, seed=0, departments_per_university=2,
                  faculty_per_department=2, students_per_faculty=3,
                  cross_university_fraction=0.0)
        kb = MaterializedKB(ds.ontology)
        kb.add(iter(ds.data))
        return kb

    @pytest.mark.parametrize("store", ["dense", "run"])
    def test_all_fourteen_queries_match(self, kb, store):
        index = IdIndex(kb.graph, store=store)
        for q in LUBM_QUERIES:
            bgp = q.parse().bgp
            variables = tuple(sorted(bgp.variables(), key=lambda v: v.name))
            expected = rows_of(bgp.execute(kb.graph), variables)
            assert rows_of(index.execute(bgp), variables) == expected, q.name
            assert expected, f"{q.name} should have answers"

    def test_probe_counts_match_term_engine(self, kb):
        index = IdIndex(kb.graph, ordering="bound")
        for q in LUBM_QUERIES:
            bgp = q.parse().bgp
            _, term_stats = bgp.execute_with_stats(kb.graph)
            _, id_stats = index.execute_with_stats(bgp)
            assert id_stats.index_probes == term_stats.index_probes, q.name
            assert id_stats.solutions == term_stats.solutions, q.name
