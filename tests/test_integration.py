"""Cross-system integration tests: the paper's correctness claims, end to
end, on all three benchmarks and all partitioning configurations."""

import pytest

from repro.datasets import LUBM, MDC, UOBM
from repro.owl import HorstReasoner
from repro.parallel import CostModel, ParallelReasoner, SimulatedCluster
from repro.partitioning.policies import (
    DomainPartitioningPolicy,
    GraphPartitioningPolicy,
    HashPartitioningPolicy,
)
from repro.rdf import Graph


def _tiny(name):
    if name == "lubm":
        return LUBM(3, seed=1, departments_per_university=1,
                    faculty_per_department=2, students_per_faculty=2)
    if name == "uobm":
        return UOBM(3, seed=1, departments_per_university=1,
                    faculty_per_department=2, students_per_faculty=2)
    return MDC(3, seed=1, wells_per_field=2, hierarchy_depth=4)


def _instance_closure(pr, result):
    return Graph(t for t in result.graph if t not in pr.compiled.schema)


@pytest.mark.parametrize("dataset_name", ["lubm", "uobm", "mdc"])
@pytest.mark.parametrize("k", [2, 3])
def test_data_partitioning_all_datasets(dataset_name, k):
    ds = _tiny(dataset_name)
    serial = HorstReasoner(ds.ontology).materialize(ds.data)
    pr = ParallelReasoner(ds.ontology, k=k, approach="data")
    assert _instance_closure(pr, pr.materialize(ds.data)) == serial.graph


@pytest.mark.parametrize("dataset_name", ["lubm", "uobm", "mdc"])
def test_rule_partitioning_all_datasets(dataset_name):
    ds = _tiny(dataset_name)
    serial = HorstReasoner(ds.ontology).materialize(ds.data)
    pr = ParallelReasoner(ds.ontology, k=3, approach="rule")
    assert _instance_closure(pr, pr.materialize(ds.data)) == serial.graph


@pytest.mark.parametrize(
    "policy_factory",
    [
        lambda ds: GraphPartitioningPolicy(seed=0),
        lambda ds: HashPartitioningPolicy(),
        lambda ds: DomainPartitioningPolicy(ds.domain_grouper),
    ],
    ids=["graph", "hash", "domain"],
)
def test_all_policies_preserve_closure(policy_factory):
    ds = _tiny("lubm")
    serial = HorstReasoner(ds.ontology).materialize(ds.data)
    pr = ParallelReasoner(
        ds.ontology, k=3, approach="data", policy=policy_factory(ds)
    )
    assert _instance_closure(pr, pr.materialize(ds.data)) == serial.graph


def test_backward_strategy_in_parallel_matches_serial():
    ds = _tiny("lubm")
    serial = HorstReasoner(ds.ontology).materialize(ds.data)
    pr = ParallelReasoner(ds.ontology, k=2, approach="data",
                          strategy="backward")
    assert _instance_closure(pr, pr.materialize(ds.data)) == serial.graph


def test_simulated_cluster_consistent_across_cost_models():
    """Cost models change the timeline, never the result."""
    ds = _tiny("mdc")
    runs = []
    for cm in (CostModel.file_ipc(), CostModel.mpi(), CostModel.zero()):
        pr = ParallelReasoner(ds.ontology, k=2, approach="data")
        runs.append(SimulatedCluster(pr, cm).run(ds.data))
    graphs = [run.result.graph for run in runs]
    assert graphs[0] == graphs[1] == graphs[2]
    # file IPC must model the largest IO share.
    assert max(runs[0].per_node_io) >= max(runs[1].per_node_io)
    assert max(runs[2].per_node_io) == 0.0


def test_deterministic_end_to_end():
    """Same seed, same everything: identical closures, identical
    communicated-tuple counts, identical work."""
    ds = _tiny("uobm")

    def run_once():
        pr = ParallelReasoner(ds.ontology, k=3, approach="data", seed=9)
        result = pr.materialize(ds.data)
        return (
            len(result.graph),
            result.stats.total_tuples_communicated(),
            sum(result.stats.work_per_node()),
        )

    assert run_once() == run_once()


def test_fresh_resources_introduced_by_inference_route_consistently():
    """Derived triples may mention resources with no explicit owner-table
    entry; the deterministic hash fallback must keep the closure exact."""
    from repro.owl.vocabulary import OWL, RDF
    from repro.rdf import URI

    tbox = Graph()
    tbox.add_spo(URI("ex:p"), RDF.type, OWL.TransitiveProperty)
    tbox.add_spo(URI("ex:p"), OWL.inverseOf, URI("ex:q"))
    data = Graph()
    for i in range(6):
        data.add_spo(URI(f"ex:n{i}"), URI("ex:p"), URI(f"ex:n{i + 1}"))
    serial = HorstReasoner(tbox).materialize(data)
    pr = ParallelReasoner(tbox, k=3, approach="data")
    assert _instance_closure(pr, pr.materialize(data)) == serial.graph
