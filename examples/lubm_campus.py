#!/usr/bin/env python
"""LUBM walkthrough: generate a multi-university KB, compare the three
data-partitioning policies (the paper's Fig 5 / Table I in miniature), and
run the parallel reasoner on the best one.

Run:  python examples/lubm_campus.py [universities]
"""

import sys

from repro.datasets import LUBM
from repro.datasets.lubm import UB
from repro.owl.vocabulary import RDF
from repro.parallel import CostModel, ParallelReasoner, SimulatedCluster
from repro.partitioning import compute_data_metrics, partition_data
from repro.partitioning.policies import (
    DomainPartitioningPolicy,
    GraphPartitioningPolicy,
    HashPartitioningPolicy,
)
from repro.util import ascii_table


def main() -> None:
    universities = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    k = min(4, universities)
    dataset = LUBM(universities, seed=42,
                   departments_per_university=2,
                   faculty_per_department=3,
                   students_per_faculty=4)
    print(f"{dataset.name}: {len(dataset.data)} instance triples, "
          f"{len(dataset.data.resources())} resources\n")

    # --- compare partitioning policies (Table I style) -----------------------
    policies = {
        "graph": GraphPartitioningPolicy(seed=42),
        "domain": DomainPartitioningPolicy(dataset.domain_grouper),
        "hash": HashPartitioningPolicy(),
    }
    rows = []
    for name, policy in policies.items():
        result = partition_data(dataset.data, policy, k)
        metrics = compute_data_metrics(result, dataset.data)
        rows.append([name, k, round(metrics.bal, 1),
                     round(metrics.duplication, 3),
                     round(metrics.partition_time, 3)])
    print(ascii_table(["policy", "k", "bal", "IR-1", "time_s"], rows,
                      title=f"partitioning metrics at k={k}"))

    # --- run the parallel reasoner on the graph policy ----------------------
    reasoner = ParallelReasoner(
        dataset.ontology, k=k, approach="data",
        policy=GraphPartitioningPolicy(seed=42),
    )
    sim = SimulatedCluster(reasoner, CostModel.file_ipc())
    run = sim.run(dataset.data)
    breakdown = run.breakdown()
    print(f"\nparallel materialization, k={k} "
          f"({run.result.stats.num_rounds} rounds):")
    print(f"  closure size:  {len(run.result.graph)} triples")
    print(f"  reasoning max: {breakdown.reasoning:.3f}s   io: {breakdown.io:.3f}s"
          f"   sync: {breakdown.sync:.3f}s   aggregation: {breakdown.aggregation:.3f}s")

    # --- and ask it something ------------------------------------------------
    chairs = sorted(
        t.s.local_name()
        for t in run.result.graph.match(None, RDF.type, UB.Chair)
    )
    print(f"\ninferred department chairs (someValuesFrom restriction): "
          f"{len(chairs)}")
    for c in chairs[:5]:
        print(f"  {c}")


if __name__ == "__main__":
    main()
