#!/usr/bin/env python
"""The materialized-KB workflow the paper's introduction motivates:
bulk-load once (in parallel), then serve queries from the closed KB and
absorb occasional additions incrementally.

Run:  python examples/materialized_kb.py
"""

from repro.datalog.ast import Atom
from repro.datasets import LUBM
from repro.datasets.lubm import UB
from repro.owl import MaterializedKB
from repro.owl.vocabulary import RDF
from repro.rdf import BGPQuery, Triple, URI
from repro.rdf.terms import Variable

X, Y = Variable("x"), Variable("y")


def main() -> None:
    dataset = LUBM(3, seed=11, departments_per_university=2,
                   faculty_per_department=3, students_per_faculty=4)

    # --- bulk load: the one heavy step, delegated to the parallel reasoner
    kb = MaterializedKB(dataset.ontology)
    kb.bulk_load(dataset.data, parallel_k=3)
    print(f"loaded {kb.base_size} base triples -> {kb.size} after closure "
          f"({kb.inferred_size} inferred)")

    # --- queries hit the closed graph: no reasoning on the read path -----
    professors = BGPQuery([
        Atom(X, RDF.type, UB.Professor),       # subclass closure
        Atom(X, UB.memberOf, Y),               # subproperty closure
    ])
    rows, stats = professors.execute_with_stats(kb.graph)
    print(f"\nprofessors with their organizations: {len(rows)} rows "
          f"({stats.index_probes} index probes, zero rule firings)")

    chairs = sorted(
        t.s.local_name() for t in kb.match(p=RDF.type, o=UB.Chair)
    )
    print(f"inferred chairs: {len(chairs)}")

    # --- incremental load: a new hire, closed in milliseconds -------------
    new_prof = URI("http://www.University0.edu/Department0/FacultyNew")
    dept = URI("http://www.University0.edu/Department0")
    added = kb.add([
        Triple(new_prof, RDF.type, UB.AssistantProfessor),
        Triple(new_prof, UB.worksFor, dept),
    ])
    from repro.owl import HorstReasoner

    from_scratch = HorstReasoner(dataset.ontology).materialize(kb.base_graph)
    print(f"\nincremental add: {added} base triples, "
          f"{kb.last_load_stats.derived} consequences, "
          f"{kb.last_load_stats.work} work units — a from-scratch re-closure "
          f"would cost {from_scratch.work}")
    assert kb.ask([Atom(new_prof, RDF.type, UB.Person)])
    assert kb.ask([Atom(new_prof, UB.memberOf, dept)])
    print("the new professor is a Person and a member of the department ✓")


if __name__ == "__main__":
    main()
