#!/usr/bin/env python
"""Oilfield (MDC-like) scenario: materialize deep transitive equipment
hierarchies and answer asset-containment questions — the workload class the
paper's proprietary MDC dataset represents.

Run:  python examples/oilfield_monitoring.py
"""

from repro.datasets import MDC
from repro.datasets.mdc import MDCNS
from repro.owl import HorstReasoner
from repro.owl.vocabulary import RDF
from repro.parallel import ParallelReasoner
from repro.partitioning.policies import DomainPartitioningPolicy
from repro.rdf import Graph


def main() -> None:
    dataset = MDC(fields=3, wells_per_field=3, hierarchy_depth=6, seed=7)
    print(f"{dataset.name}: {len(dataset.data)} instance triples\n")

    # --- serial: what is (transitively) part of Well0 of Field0? -------------
    reasoner = HorstReasoner(dataset.ontology)
    closed = reasoner.materialize(dataset.data).graph

    well = MDC.__module__  # noqa: F841 (illustrative; real URI below)
    from repro.datasets.mdc import MDCGenerator
    well0 = MDCGenerator.entity_uri(0, "Well0")
    parts = sorted(
        t.s.local_name() for t in closed.match(None, MDCNS.partOf, well0)
    )
    print(f"components transitively part of Field0/Well0: {len(parts)}")
    for p in parts[:6]:
        print(f"  {p}")

    # hasPart is inferred as the inverse of partOf:
    has_parts = list(closed.match(well0, MDCNS.hasPart, None))
    print(f"Well0 hasPart (inverse inference): {len(has_parts)} triples")

    # every sensor is Equipment via the class hierarchy:
    sensors = sum(1 for _ in closed.match(None, RDF.type, MDCNS.Sensor))
    equipment = sum(1 for _ in closed.match(None, RDF.type, MDCNS.Equipment))
    print(f"sensors: {sensors}; equipment (superclass closure): {equipment}")

    # --- parallel: field-aware domain partitioning ---------------------------
    parallel = ParallelReasoner(
        dataset.ontology, k=3, approach="data",
        policy=DomainPartitioningPolicy(dataset.domain_grouper),
    )
    result = parallel.materialize(dataset.data)
    instance_closure = Graph(
        t for t in result.graph if t not in parallel.compiled.schema
    )
    assert instance_closure == closed
    print(f"\nparallel (k=3, domain policy): {result.stats.num_rounds} rounds, "
          f"{result.stats.total_tuples_communicated()} tuples communicated — "
          "matches serial ✓")


if __name__ == "__main__":
    main()
