#!/usr/bin/env python
"""Quickstart: define a tiny ontology, materialize it serially and in
parallel, and check both agree.

Run:  python examples/quickstart.py
"""

from repro.owl import HorstReasoner
from repro.owl.vocabulary import OWL, RDF, RDFS
from repro.parallel import ParallelReasoner
from repro.rdf import Graph, Namespace

EX = Namespace("http://example.org/family#")


def build_ontology() -> Graph:
    """A family ontology exercising the OWL-Horst feature set."""
    tbox = Graph()
    # Class hierarchy: every Parent is a Person.
    tbox.add_spo(EX.Parent, RDFS.subClassOf, EX.Person)
    tbox.add_spo(EX.Grandparent, RDFS.subClassOf, EX.Parent)
    # hasChild implies the parent/child types via domain/range.
    tbox.add_spo(EX.hasChild, RDFS.domain, EX.Parent)
    tbox.add_spo(EX.hasChild, RDFS.range, EX.Person)
    # ancestorOf is transitive; hasChild is a sub-property of ancestorOf.
    tbox.add_spo(EX.ancestorOf, RDF.type, OWL.TransitiveProperty)
    tbox.add_spo(EX.hasChild, RDFS.subPropertyOf, EX.ancestorOf)
    # marriedTo is symmetric, hasParent is the inverse of hasChild.
    tbox.add_spo(EX.marriedTo, RDF.type, OWL.SymmetricProperty)
    tbox.add_spo(EX.hasChild, OWL.inverseOf, EX.hasParent)
    return tbox


def build_data() -> Graph:
    data = Graph()
    data.add_spo(EX.alice, EX.hasChild, EX.bob)
    data.add_spo(EX.bob, EX.hasChild, EX.carol)
    data.add_spo(EX.carol, EX.hasChild, EX.dave)
    data.add_spo(EX.alice, EX.marriedTo, EX.albert)
    return data


def main() -> None:
    tbox, data = build_ontology(), build_data()

    # --- serial materialization -------------------------------------------
    reasoner = HorstReasoner(tbox)
    serial = reasoner.materialize(data)
    print(f"base triples:     {len(data)}")
    print(f"after reasoning:  {len(serial.graph)} "
          f"({serial.inferred_count} inferred)")

    # A few of the inferences:
    print("\nancestors of dave (via transitive ancestorOf):")
    for t in sorted(serial.graph.match(None, EX.ancestorOf, EX.dave), key=str):
        print(f"  {t.s.local_name()}")
    print("\ntypes of alice (domain + class hierarchy):")
    for t in sorted(serial.graph.match(EX.alice, RDF.type, None), key=str):
        print(f"  {t.o.local_name()}")
    print("\nalbert's spouse (symmetric marriedTo):",
          next(serial.graph.match(EX.albert, EX.marriedTo, None)).o.local_name())

    # --- parallel materialization (Algorithm 1 + 3) -------------------------
    parallel = ParallelReasoner(tbox, k=2, approach="data")
    result = parallel.materialize(data)
    instance_closure = Graph(
        t for t in result.graph if t not in parallel.compiled.schema
    )
    assert instance_closure == serial.graph, "parallel must equal serial!"
    print(f"\nparallel run (k=2): {result.stats.num_rounds} rounds, "
          f"{result.stats.total_tuples_communicated()} tuples communicated — "
          "closure identical to serial ✓")


if __name__ == "__main__":
    main()
