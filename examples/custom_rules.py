#!/usr/bin/env python
"""Using the datalog layer directly: write rules in the text syntax, run
all three engines, and partition a custom rule base (Algorithm 2) —
the library without the OWL layer on top.

Run:  python examples/custom_rules.py
"""

from repro.datalog import (
    BackwardEngine,
    NaiveEngine,
    SemiNaiveEngine,
    classify_rule,
    parse_rules,
)
from repro.datalog.ast import Atom
from repro.partitioning import partition_rules
from repro.rdf import Graph, URI
from repro.rdf.terms import Variable

RULES_TEXT = """
@prefix net: <http://example.org/network#>

# Reachability: direct links reach, and reach is transitive through links.
[reach-base:  (?a net:linkedTo ?b) -> (?a net:reaches ?b)]
[reach-trans: (?a net:reaches ?b) (?b net:linkedTo ?c) -> (?a net:reaches ?c)]

# Two-way links.
[symmetric:   (?a net:linkedTo ?b) -> (?b net:linkedTo ?a)]

# A node reaching a gateway is itself externally connected.
[external:    (?a net:reaches ?g) (?g net:isGateway "true") -> (?a net:external "true")]
"""

NET = "http://example.org/network#"


def main() -> None:
    rules = parse_rules(RULES_TEXT)
    print("parsed rules:")
    for rule in rules:
        print(f"  {rule}   [{classify_rule(rule).value}]")

    # A little ring network with one gateway.
    g = Graph()
    nodes = [URI(f"{NET}host{i}") for i in range(6)]
    for a, b in zip(nodes, nodes[1:]):
        g.add_spo(a, URI(NET + "linkedTo"), b)
    from repro.rdf import Literal
    g.add_spo(nodes[-1], URI(NET + "isGateway"), Literal("true"))

    # --- forward engines agree -----------------------------------------------
    g1, g2 = g.copy(), g.copy()
    semi = SemiNaiveEngine(rules).run(g1)
    naive = NaiveEngine(rules).run(g2)
    assert g1 == g2
    print(f"\nclosure: {len(g1)} triples "
          f"(semi-naive: {semi.stats.iterations} iterations, "
          f"{semi.stats.join_probes} probes; "
          f"naive: {naive.stats.iterations} iterations, "
          f"{naive.stats.join_probes} probes)")

    # --- ask the backward engine a question ----------------------------------
    backward = BackwardEngine(g.copy(), rules)
    answers = backward.query(
        Atom(nodes[0], URI(NET + "external"), Variable("x"))
    )
    print(f"is host0 externally connected? {'yes' if answers else 'no'}")

    # --- Algorithm 2 on the custom rule base ----------------------------------
    partitioned = partition_rules(rules, k=2, seed=1)
    print(f"\nrule partitioning (k=2, dependency edge cut = "
          f"{partitioned.edge_cut}):")
    for i, subset in enumerate(partitioned.rule_sets):
        print(f"  node {i}: {[r.name for r in subset]}")


if __name__ == "__main__":
    main()
