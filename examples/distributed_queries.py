#!/usr/bin/env python
"""End-to-end cluster story: materialize in parallel, keep the KB
partitioned, and answer the LUBM benchmark queries by scatter-gather —
no aggregation step, queries written in SPARQL.

Run:  python examples/distributed_queries.py
"""

from repro.datasets import LUBM
from repro.datasets.lubm_queries import LUBM_QUERIES
from repro.owl import HorstReasoner
from repro.parallel import CostModel, DistributedQueryEngine, ParallelReasoner
from repro.util import ascii_table

K = 4


def main() -> None:
    dataset = LUBM(4, seed=5, departments_per_university=2,
                   faculty_per_department=2, students_per_faculty=3)
    print(f"{dataset.name}: {len(dataset.data)} instance triples, "
          f"materializing on {K} partitions...")

    reasoner = ParallelReasoner(dataset.ontology, k=K, approach="data")
    run = reasoner.materialize(dataset.data)
    sizes = [len(g) for g in run.node_outputs]
    print(f"done in {run.stats.num_rounds} rounds; partition sizes: {sizes}\n")

    # Query the partitions directly — the closed KB never leaves the nodes.
    engine = DistributedQueryEngine(run.node_outputs)
    centralized = HorstReasoner(dataset.ontology).materialize(dataset.data).graph

    rows = []
    cost_model = CostModel.mpi()
    for query in LUBM_QUERIES:
        bgp = query.parse().bgp
        distributed, stats = engine.execute(bgp)
        central_count = bgp.count(centralized)
        assert len(distributed) == central_count, query.name
        rows.append([
            query.name,
            len(distributed),
            stats.total_shipped,
            round(stats.modeled_gather_time(cost_model) * 1000, 2),
        ])
    print(ascii_table(
        ["query", "rows", "tuples_shipped", "gather_ms (mpi model)"],
        rows,
        title="LUBM queries, scatter-gather over the live partitions "
              "(all counts verified against a centralized closure)",
    ))


if __name__ == "__main__":
    main()
